/**
 * @file
 * "compress" workload — a run-length encoder over text-like input,
 * standing in for SPEC95 129.compress. Structure: an outer pass loop,
 * a run-scanning inner loop, a per-run emit() procedure (whose run-
 * length argument is heavily semi-invariant — most runs have length
 * 1), and an Adler-style checksum over the compressed output.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const compressAsm = R"(
# compress: run-length encoding benchmark
    .data
iterations:  .word 0
input_len:   .word 0
out_len:     .word 0
modulus:     .word 65521          # checksum modulus (a global)
input:       .space 32768
outbuf:      .space 65536

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    la   t0, iterations
    ld   s0, 0(t0)          # pass counter
    li   s1, 0              # checksum accumulator
pass_loop:
    beqz s0, passes_done
    la   a0, input
    la   t0, input_len
    ld   a1, 0(t0)
    la   a2, outbuf
    call rle_encode         # a0 = compressed length
    la   t0, out_len
    st   a0, 0(t0)
    mov  a1, a0
    la   a0, outbuf
    call checksum           # a0 = checksum of compressed data
    xor  s1, s1, a0
    addi s1, s1, 13
    addi s0, s0, -1
    jmp  pass_loop
passes_done:
    mov  a0, s1
    syscall puti
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

# rle_encode(src, len, dst) -> compressed length
    .proc rle_encode args=3
rle_encode:
    addi sp, sp, -48
    st   ra, 0(sp)
    st   s0, 8(sp)
    st   s1, 16(sp)
    st   s2, 24(sp)
    st   s3, 32(sp)
    st   s4, 40(sp)
    mov  s0, a0             # src cursor
    add  s1, a0, a1         # src end
    mov  s2, a2             # dst cursor
    mov  s3, a2             # dst base
enc_loop:
    bgeu s0, s1, enc_done
    lbu  t3, 0(s0)          # current byte
    li   t4, 1              # run length
run_loop:
    add  t5, s0, t4
    bgeu t5, s1, run_end
    lbu  t6, 0(t5)
    bne  t6, t3, run_end
    addi t4, t4, 1
    li   t7, 255
    blt  t4, t7, run_loop
run_end:
    mov  s4, t4             # keep the run length across the call
    mov  a0, t4             # emit(run, byte, dst) -> new dst
    mov  a1, t3
    mov  a2, s2
    call emit
    mov  s2, a0
    add  s0, s0, s4
    jmp  enc_loop
enc_done:
    sub  a0, s2, s3
    ld   s4, 40(sp)
    ld   s3, 32(sp)
    ld   s2, 24(sp)
    ld   s1, 16(sp)
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 48
    ret
    .endp

# emit(run, byte, dst) -> new dst cursor
    .proc emit args=3
emit:
    sb   a0, 0(a2)
    sb   a1, 1(a2)
    addi a0, a2, 2
    ret
    .endp

# checksum(buf, len) -> a0 (Adler-style mod 65521)
    .proc checksum args=2
checksum:
    li   t0, 1              # low word
    li   t1, 0              # high word
    mov  t2, a0
    add  t3, a0, a1
ck_loop:
    bgeu t2, t3, ck_done
    ld   t5, modulus(zero)  # global reload (invariant load)
    lbu  t4, 0(t2)
    add  t0, t0, t4
    rem  t0, t0, t5
    add  t1, t1, t0
    rem  t1, t1, t5
    addi t2, t2, 1
    jmp  ck_loop
ck_done:
    slli a0, t1, 16
    or   a0, a0, t0
    ret
    .endp
)";

/** Text-like bytes with embedded runs (spaces, repeated letters). */
std::vector<std::uint8_t>
makeInput(std::uint64_t seed, std::size_t len, double run_bias)
{
    vp::Rng rng(seed);
    std::vector<std::uint8_t> bytes;
    bytes.reserve(len);
    static const char alphabet[] =
        "etaoinshrdlucmfw ypvbgkjqxz  ETAOIN.,;:\n";
    while (bytes.size() < len) {
        const std::uint8_t ch = static_cast<std::uint8_t>(
            alphabet[rng.below(sizeof(alphabet) - 1)]);
        std::size_t run = 1;
        if (rng.chance(run_bias))
            run = 2 + rng.below(30); // an embedded run
        for (std::size_t i = 0; i < run && bytes.size() < len; ++i)
            bytes.push_back(ch);
    }
    return bytes;
}

class CompressWorkload : public Workload
{
  public:
    std::string name() const override { return "compress"; }

    std::string
    description() const override
    {
        return "run-length encoder + checksum (129.compress stand-in)";
    }

    std::string source() const override { return compressAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        const std::uint64_t seed = datasetSeed(name(), dataset);
        const bool train = dataset == "train";
        const std::size_t len = train ? 20000 : 14000;
        const double bias = train ? 0.08 : 0.15;
        const auto bytes = makeInput(seed, len, bias);
        pokeBytes(cpu, "input", bytes);
        pokeWord(cpu, "input_len", bytes.size());
        pokeWord(cpu, "iterations", train ? 4 : 3);
    }
};

} // namespace

const Workload &
compressWorkload()
{
    static const CompressWorkload instance;
    return instance;
}

} // namespace workloads
