/**
 * @file
 * "lisp" workload — a stack-machine bytecode interpreter, standing in
 * for SPEC95 130.li. This is the paper's canonical value-profiling
 * target: the opcode-fetch load and the dispatch-table load are
 * heavily semi-invariant (a few opcodes dominate), which is exactly
 * the structure dynamic compilation exploits.
 *
 * The host compiles a small bytecode program (a multiply-accumulate
 * hash over the input stream) and the guest interprets it once per
 * input element, dispatching through a jump table of handler
 * addresses held in the data segment.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

// Bytecode opcodes understood by the guest interpreter.
enum Bytecode : std::uint8_t
{
    BC_HALT = 0,
    BC_PUSH = 1,   ///< push next byte as immediate
    BC_NEXT = 2,   ///< push next input element (cursor advances)
    BC_ADD = 3,
    BC_MUL = 4,
    BC_XOR = 5,
    BC_DUP = 6,
    BC_DROP = 7,
    BC_LOADA = 8,  ///< push accumulator variable
    BC_STOREA = 9, ///< pop into accumulator variable
    BC_AND = 10,
};

const char *const lispAsm = R"(
# lisp: stack-machine bytecode interpreter
    .data
input_len:   .word 0
input:       .space 163840         # up to 20480 64-bit input elements
bytecode:    .space 256
accum:       .word 0
cursor:      .word 0
vmstack:     .space 2048
dispatch:    .word op_halt, op_push, op_next, op_add, op_mul
             .word op_xor, op_dup, op_drop, op_loada, op_storea
             .word op_and

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    la   t0, input_len
    ld   s0, 0(t0)          # elements remaining
main_loop:
    beqz s0, main_done
    call interp             # run the bytecode program once
    addi s0, s0, -1
    jmp  main_loop
main_done:
    la   t0, accum
    ld   a0, 0(t0)
    syscall puti
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

# interp: run the bytecode program until HALT.
# Interpreter registers:
#   s2 = bytecode pc, s3 = vm stack pointer (grows up), s4 = dispatch base
    .proc interp args=0
interp:
    addi sp, sp, -8
    st   ra, 0(sp)
    la   s2, bytecode
    la   s3, vmstack
    la   s4, dispatch
interp_loop:
    lbu  t0, 0(s2)          # opcode fetch (semi-invariant load)
    addi s2, s2, 1
    slli t1, t0, 3
    add  t1, s4, t1
    ld   t2, 0(t1)          # dispatch-table load (semi-invariant)
    jalr zero, t2           # computed jump to the handler

op_halt:
    ld   ra, 0(sp)
    addi sp, sp, 8
    ret

op_push:
    lbu  t3, 0(s2)
    addi s2, s2, 1
    st   t3, 0(s3)
    addi s3, s3, 8
    jmp  interp_loop

op_next:
    la   t3, cursor
    ld   t4, 0(t3)
    la   t5, input
    slli t6, t4, 3
    add  t5, t5, t6
    ld   t6, 0(t5)          # input element
    addi t4, t4, 1
    st   t4, 0(t3)
    st   t6, 0(s3)
    addi s3, s3, 8
    jmp  interp_loop

op_add:
    addi s3, s3, -16
    ld   t3, 0(s3)
    ld   t4, 8(s3)
    add  t3, t3, t4
    st   t3, 0(s3)
    addi s3, s3, 8
    jmp  interp_loop

op_mul:
    addi s3, s3, -16
    ld   t3, 0(s3)
    ld   t4, 8(s3)
    mul  t3, t3, t4
    st   t3, 0(s3)
    addi s3, s3, 8
    jmp  interp_loop

op_xor:
    addi s3, s3, -16
    ld   t3, 0(s3)
    ld   t4, 8(s3)
    xor  t3, t3, t4
    st   t3, 0(s3)
    addi s3, s3, 8
    jmp  interp_loop

op_and:
    addi s3, s3, -16
    ld   t3, 0(s3)
    ld   t4, 8(s3)
    and  t3, t3, t4
    st   t3, 0(s3)
    addi s3, s3, 8
    jmp  interp_loop

op_dup:
    ld   t3, -8(s3)
    st   t3, 0(s3)
    addi s3, s3, 8
    jmp  interp_loop

op_drop:
    addi s3, s3, -8
    jmp  interp_loop

op_loada:
    la   t3, accum
    ld   t4, 0(t3)
    st   t4, 0(s3)
    addi s3, s3, 8
    jmp  interp_loop

op_storea:
    addi s3, s3, -8
    ld   t4, 0(s3)
    la   t3, accum
    st   t4, 0(t3)
    jmp  interp_loop
    .endp
)";

/** The bytecode program: acc = ((acc * 33) ^ next) + (next & 0xff). */
std::vector<std::uint8_t>
makeBytecode()
{
    return {
        BC_LOADA,
        BC_PUSH, 33,
        BC_MUL,
        BC_NEXT,
        BC_XOR,
        BC_NEXT,
        BC_PUSH, 255,
        BC_AND,
        BC_ADD,
        BC_STOREA,
        BC_HALT,
    };
}

class LispWorkload : public Workload
{
  public:
    std::string name() const override { return "lisp"; }

    std::string
    description() const override
    {
        return "bytecode interpreter with table dispatch (130.li "
               "stand-in)";
    }

    std::string source() const override { return lispAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        vp::Rng rng(datasetSeed(name(), dataset));
        const bool train = dataset == "train";
        // Each bytecode run consumes two input elements (two BC_NEXT).
        const std::size_t runs = train ? 9000 : 6500;
        std::vector<std::uint64_t> elems(runs * 2);
        for (auto &e : elems) {
            // Small-magnitude values with repeats, as list cells in an
            // interpreter would hold.
            e = rng.chance(0.4) ? rng.below(8) : rng.below(4096);
        }
        pokeWords(cpu, "input", elems);
        pokeWord(cpu, "input_len", runs);
        pokeBytes(cpu, "bytecode", makeBytecode());
        pokeWord(cpu, "cursor", 0);
        pokeWord(cpu, "accum", train ? 7 : 11);
    }
};

} // namespace

const Workload &
lispWorkload()
{
    static const LispWorkload instance;
    return instance;
}

} // namespace workloads
