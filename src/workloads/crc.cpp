/**
 * @file
 * "crc" workload — table-driven CRC-32 over a buffer, standing in for
 * checksum-heavy integer codes (124.m88ksim's memory checking loops).
 * The table-build phase writes 256 memory locations exactly once
 * (perfectly invariant locations); the scan loop's table loads show
 * the value locality the paper reports for load instructions.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const crcAsm = R"(
# crc: table-driven CRC-32 benchmark
    .data
iterations:  .word 0
input_len:   .word 0
input:       .space 32768
crc_table:   .space 2048          # 256 x 8-byte entries
table_ptr:   .word crc_table      # global pointer, reloaded per byte

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    call build_table
    la   t0, iterations
    ld   s0, 0(t0)
    li   s1, 0                    # combined result
crc_pass:
    beqz s0, crc_done_all
    la   a0, input
    la   t0, input_len
    ld   a1, 0(t0)
    mov  a2, s1                   # chain previous result as seed
    call crc32
    mov  s1, a0
    addi s0, s0, -1
    jmp  crc_pass
crc_done_all:
    mov  a0, s1
    syscall puti
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

# build_table: classic reflected CRC-32 table (poly 0xEDB88320)
    .proc build_table args=0
build_table:
    la   t0, crc_table
    li   t1, 0                    # index i
    li   t6, 0xEDB88320
bt_outer:
    li   t7, 256
    bge  t1, t7, bt_done
    mov  t2, t1                   # c = i
    li   t3, 8                    # bit counter
bt_inner:
    beqz t3, bt_store
    andi t4, t2, 1
    srli t2, t2, 1
    beqz t4, bt_noxor
    xor  t2, t2, t6
bt_noxor:
    addi t3, t3, -1
    jmp  bt_inner
bt_store:
    slli t5, t1, 3
    add  t5, t0, t5
    st   t2, 0(t5)
    addi t1, t1, 1
    jmp  bt_outer
bt_done:
    ret
    .endp

# crc32(buf, len, seed) -> crc
    .proc crc32 args=3
crc32:
    li   t8, 0xFFFFFFFF
    xor  t0, a2, t8               # c = seed ^ ~0
    and  t0, t0, t8
    mov  t1, a0                   # cursor
    add  t2, a0, a1               # end
crc_loop:
    bgeu t1, t2, crc_end
    ld   t3, table_ptr(zero)      # global reload (invariant load)
    lbu  t4, 0(t1)
    xor  t5, t0, t4
    andi t5, t5, 0xff
    slli t5, t5, 3
    add  t5, t3, t5
    ld   t5, 0(t5)                # table lookup
    srli t0, t0, 8
    xor  t0, t5, t0
    and  t0, t0, t8
    addi t1, t1, 1
    jmp  crc_loop
crc_end:
    xor  a0, t0, t8
    and  a0, a0, t8
    ret
    .endp
)";

class CrcWorkload : public Workload
{
  public:
    std::string name() const override { return "crc"; }

    std::string
    description() const override
    {
        return "table-driven CRC-32 passes (checksum kernel stand-in)";
    }

    std::string source() const override { return crcAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        vp::Rng rng(datasetSeed(name(), dataset));
        const bool train = dataset == "train";
        const std::size_t len = train ? 16384 : 12000;
        std::vector<std::uint8_t> bytes(len);
        for (auto &b : bytes) {
            // Mixture: mostly ASCII-ish bytes plus a zero-heavy tail
            // region, giving loads a realistic zero fraction.
            b = rng.chance(0.25)
                    ? 0
                    : static_cast<std::uint8_t>(32 + rng.below(96));
        }
        pokeBytes(cpu, "input", bytes);
        pokeWord(cpu, "input_len", bytes.size());
        pokeWord(cpu, "iterations", train ? 6 : 5);
    }
};

} // namespace

const Workload &
crcWorkload()
{
    static const CrcWorkload instance;
    return instance;
}

} // namespace workloads
