/**
 * @file
 * "dijkstra" workload — repeated single-source shortest paths over a
 * dense adjacency matrix (O(V^2) linear-scan priority selection),
 * standing in for pointer/graph integer codes. The relax() procedure's
 * weight argument distribution is skewed (a few edge weights dominate),
 * and the visited-flag loads are mostly 1 late in each pass.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const dijkstraAsm = R"(
# dijkstra: dense-graph single-source shortest paths
    .data
nverts:      .word 0
nsources:    .word 0
adj:         .space 32768          # nverts*nverts bytes (255 = no edge)
dist:        .space 512            # per-vertex distance words
visited:     .space 64             # per-vertex visited bytes
result:      .word 0

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    la   t0, nsources
    ld   s0, 0(t0)
    li   s5, 0                 # source vertex cursor
src_loop:
    beqz s0, src_done
    mov  a0, s5
    call sssp                  # a0 = sum of distances from source
    la   t0, result
    ld   t1, 0(t0)
    add  t1, t1, a0
    st   t1, 0(t0)
    addi s5, s5, 1
    la   t2, nverts
    ld   t2, 0(t2)
    blt  s5, t2, src_next
    li   s5, 0
src_next:
    addi s0, s0, -1
    jmp  src_loop
src_done:
    la   t0, result
    ld   a0, 0(t0)
    syscall puti
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

# sssp(source) -> sum of finite distances
    .proc sssp args=1
sssp:
    addi sp, sp, -8
    st   ra, 0(sp)
    la   s1, nverts
    ld   s1, 0(s1)             # V
    # init dist = INF, visited = 0
    li   t0, 0
    la   t1, dist
    la   t2, visited
    li   t3, 1000000000
init_loop:
    bge  t0, s1, init_done
    slli t4, t0, 3
    add  t4, t1, t4
    st   t3, 0(t4)
    add  t4, t2, t0
    sb   zero, 0(t4)
    addi t0, t0, 1
    jmp  init_loop
init_done:
    la   t1, dist
    slli t4, a0, 3
    add  t4, t1, t4
    st   zero, 0(t4)           # dist[src] = 0
    li   s2, 0                 # iteration count
outer_loop:
    bge  s2, s1, outer_done
    call pick_min              # a0 = unvisited vertex with min dist
    blt  a0, zero, outer_done  # none left
    mov  s3, a0
    # mark visited
    la   t2, visited
    add  t2, t2, s3
    li   t3, 1
    sb   t3, 0(t2)
    # relax all neighbors
    li   s4, 0                 # v
relax_loop:
    bge  s4, s1, relax_done
    # w = adj[u*V + v]
    mul  t4, s3, s1
    add  t4, t4, s4
    la   t5, adj
    add  t5, t5, t4
    lbu  t6, 0(t5)
    li   t7, 255
    beq  t6, t7, relax_next    # no edge
    mov  a0, s3
    mov  a1, s4
    mov  a2, t6
    call relax
relax_next:
    addi s4, s4, 1
    jmp  relax_loop
relax_done:
    addi s2, s2, 1
    jmp  outer_loop
outer_done:
    # sum distances
    li   t0, 0
    li   t1, 0
    la   t2, dist
    li   t3, 1000000000
sum_loop:
    bge  t0, s1, sum_done
    slli t4, t0, 3
    add  t4, t2, t4
    ld   t5, 0(t4)
    bge  t5, t3, sum_next
    add  t1, t1, t5
sum_next:
    addi t0, t0, 1
    jmp  sum_loop
sum_done:
    mov  a0, t1
    ld   ra, 0(sp)
    addi sp, sp, 8
    ret
    .endp

# pick_min() -> unvisited vertex with smallest dist, or -1
# (uses s1 = V from caller)
    .proc pick_min args=0
pick_min:
    li   t0, 0                 # v
    li   t1, -1                # best vertex
    li   t2, 1000000001        # best dist
    la   t3, dist
    la   t4, visited
pm_loop:
    bge  t0, s1, pm_done
    add  t5, t4, t0
    lbu  t5, 0(t5)             # visited flag load
    bnez t5, pm_next
    slli t6, t0, 3
    add  t6, t3, t6
    ld   t6, 0(t6)
    bge  t6, t2, pm_next
    mov  t2, t6
    mov  t1, t0
pm_next:
    addi t0, t0, 1
    jmp  pm_loop
pm_done:
    mov  a0, t1
    ret
    .endp

# relax(u, v, w): dist[v] = min(dist[v], dist[u] + w)
    .proc relax args=3
relax:
    la   t0, dist
    slli t1, a0, 3
    add  t1, t0, t1
    ld   t2, 0(t1)             # dist[u]
    add  t2, t2, a2
    slli t3, a1, 3
    add  t3, t0, t3
    ld   t4, 0(t3)             # dist[v]
    bge  t2, t4, relax_skip
    st   t2, 0(t3)
relax_skip:
    ret
    .endp
)";

class DijkstraWorkload : public Workload
{
  public:
    std::string name() const override { return "dijkstra"; }

    std::string
    description() const override
    {
        return "dense-graph shortest paths (graph-traversal stand-in)";
    }

    std::string source() const override { return dijkstraAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        vp::Rng rng(datasetSeed(name(), dataset));
        const bool train = dataset == "train";
        const std::uint64_t v = train ? 48 : 40;
        std::vector<std::uint8_t> adj(v * v, 255);
        // Sparse-ish graph with a skewed weight distribution: most
        // edges weigh 1 or 2, a few are heavy.
        const double p = train ? 0.22 : 0.30;
        for (std::uint64_t i = 0; i < v; ++i) {
            for (std::uint64_t j = 0; j < v; ++j) {
                if (i == j || !rng.chance(p))
                    continue;
                std::uint8_t w;
                if (rng.chance(0.6))
                    w = 1;
                else if (rng.chance(0.5))
                    w = 2;
                else
                    w = static_cast<std::uint8_t>(3 + rng.below(60));
                adj[i * v + j] = w;
            }
        }
        pokeBytes(cpu, "adj", adj);
        pokeWord(cpu, "nverts", v);
        pokeWord(cpu, "nsources", train ? 40 : 28);
    }
};

} // namespace

const Workload &
dijkstraWorkload()
{
    static const DijkstraWorkload instance;
    return instance;
}

} // namespace workloads
