/**
 * @file
 * "anagram" workload — word tokenizing and hash-bucket counting over
 * text, standing in for dictionary-driven integer codes (134.perl /
 * 147.vortex flavour). Exercises byte loads over text, a hash inner
 * loop with a semi-invariant multiplier, and histogram updates whose
 * store addresses concentrate on a few hot buckets.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const anagramAsm = R"(
# anagram: tokenize words, hash them, count buckets
    .data
iterations:  .word 0
input_len:   .word 0
nqueries:    .word 0
input:       .space 32768
histogram:   .space 2048           # 256 x 8-byte buckets
hist_ptr:    .word histogram       # global pointer, reloaded per word
hash_mult:   .word 33              # hash multiplier (a global)
probe_a:     .asciiz "value "
probe_b:     .asciiz "profile "

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    la   t0, iterations
    ld   s0, 0(t0)
ana_pass:
    beqz s0, ana_done
    call scan_words
    addi s0, s0, -1
    jmp  ana_pass
ana_done:
    # Query phase: look up two fixed keywords repeatedly. Each call
    # site passes a constant pointer — variant globally, invariant
    # per call site (the context-sensitivity showcase).
    la   t0, nqueries
    ld   s3, 0(t0)
    li   s4, 0
query_loop:
    beqz s3, query_done
    la   a0, probe_a
    addi a1, a0, 6
    call hash_word            # site A: always probe_a
    xor  s4, s4, a0
    la   a0, probe_b
    addi a1, a0, 8
    call hash_word            # site B: always probe_b
    add  s4, s4, a0
    addi s3, s3, -1
    jmp  query_loop
query_done:
    call best_bucket          # a0 = index of max bucket
    mov  s1, a0
    call hist_checksum        # a0 = checksum over histogram
    xor  a0, a0, s1
    xor  a0, a0, s4
    syscall puti
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

# scan_words: walk the input, hash each word, bump its bucket
    .proc scan_words args=0
scan_words:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s1, 8(sp)
    la   s1, input
    la   t0, input_len
    ld   t0, 0(t0)
    add  s2, s1, t0           # end
sw_loop:
    bgeu s1, s2, sw_done
    lbu  t1, 0(s1)
    li   t2, 32               # space separates words
    beq  t1, t2, sw_skip
    mov  a0, s1
    mov  a1, s2
    call hash_word            # a0 = hash, a1 = chars consumed
    add  s1, s1, a1
    andi t3, a0, 0xff
    ld   t4, hist_ptr(zero)   # global reload (invariant load)
    slli t3, t3, 3
    add  t4, t4, t3
    ld   t5, 0(t4)
    addi t5, t5, 1
    st   t5, 0(t4)
    jmp  sw_loop
sw_skip:
    addi s1, s1, 1
    jmp  sw_loop
sw_done:
    ld   s1, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    ret
    .endp

# hash_word(ptr, end) -> a0 = hash, a1 = length consumed
    .proc hash_word args=2
hash_word:
    li   t0, 5381             # djb2 seed (invariant)
    mov  t1, a0
hw_loop:
    bgeu t1, a1, hw_done
    lbu  t2, 0(t1)
    li   t3, 32
    beq  t2, t3, hw_done
    ld   t4, hash_mult(zero)  # global reload (invariant load)
    mul  t0, t0, t4
    xor  t0, t0, t2
    addi t1, t1, 1
    jmp  hw_loop
hw_done:
    sub  a1, t1, a0
    mov  a0, t0
    ret
    .endp

# best_bucket() -> index of the largest histogram bucket
    .proc best_bucket args=0
best_bucket:
    la   t0, histogram
    li   t1, 0                # index
    li   t2, 0                # best value
    li   t3, 0                # best index
bb_loop:
    li   t4, 256
    bge  t1, t4, bb_done
    slli t5, t1, 3
    add  t5, t0, t5
    ld   t6, 0(t5)
    bge  t2, t6, bb_next
    mov  t2, t6
    mov  t3, t1
bb_next:
    addi t1, t1, 1
    jmp  bb_loop
bb_done:
    mov  a0, t3
    ret
    .endp

# hist_checksum() -> xor-rotate over all buckets
    .proc hist_checksum args=0
hist_checksum:
    la   t0, histogram
    li   t1, 0
    li   t2, 0
hc_loop:
    li   t4, 256
    bge  t1, t4, hc_done
    slli t5, t1, 3
    add  t5, t0, t5
    ld   t6, 0(t5)
    slli t3, t2, 5
    srli t2, t2, 59
    or   t2, t3, t2
    xor  t2, t2, t6
    addi t1, t1, 1
    jmp  hc_loop
hc_done:
    mov  a0, t2
    ret
    .endp
)";

/** Space-separated words drawn from a Zipf-ish dictionary. */
std::vector<std::uint8_t>
makeText(std::uint64_t seed, std::size_t len)
{
    vp::Rng rng(seed);
    static const char *const dict[] = {
        "the",   "of",     "and",   "value", "profile", "cache",
        "table", "branch", "load",  "store", "run",     "time",
        "code",  "spec",   "data",  "word",  "hash",    "loop",
        "invariant", "register",
    };
    constexpr std::size_t dict_size = sizeof(dict) / sizeof(dict[0]);
    std::vector<std::uint8_t> out;
    out.reserve(len);
    while (out.size() < len) {
        // Zipf-like pick: prefer early dictionary entries.
        std::size_t idx = rng.below(dict_size);
        idx = std::min(idx, rng.below(dict_size));
        for (const char *p = dict[idx]; *p && out.size() < len; ++p)
            out.push_back(static_cast<std::uint8_t>(*p));
        if (out.size() < len)
            out.push_back(' ');
    }
    // Terminate cleanly on a separator.
    out.back() = ' ';
    return out;
}

class AnagramWorkload : public Workload
{
  public:
    std::string name() const override { return "anagram"; }

    std::string
    description() const override
    {
        return "word hashing and bucket counts (text-processing "
               "stand-in)";
    }

    std::string source() const override { return anagramAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        const bool train = dataset == "train";
        const auto text = makeText(datasetSeed(name(), dataset),
                                   train ? 24000 : 17000);
        pokeBytes(cpu, "input", text);
        pokeWord(cpu, "input_len", text.size());
        pokeWord(cpu, "iterations", train ? 5 : 4);
        pokeWord(cpu, "nqueries", train ? 1200 : 800);
    }
};

} // namespace

const Workload &
anagramWorkload()
{
    static const AnagramWorkload instance;
    return instance;
}

} // namespace workloads
