/**
 * @file
 * "qsort" workload — recursive quicksort plus a batch of binary
 * searches, standing in for sort/search integer codes. Exercises deep
 * call recursion (partition bounds as parameters), compare-heavy inner
 * loops, and — after sorting — binary-search mid-point loads whose
 * early probes are perfectly invariant across queries.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const qsortAsm = R"(
# qsort: recursive quicksort + binary searches
    .data
count:       .word 0
nqueries:    .word 0
array:       .space 65536          # 64-bit keys
queries:     .space 16384          # 64-bit query keys
arr_ptr:     .word array           # global pointer, reloaded per probe

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    la   t0, count
    ld   t0, 0(t0)
    li   a0, 0
    addi a1, t0, -1
    call quicksort
    # run the queries
    la   t0, nqueries
    ld   s0, 0(t0)
    li   s1, 0                 # query index
    li   s2, 0                 # hit accumulator
q_loop:
    beqz s0, q_done
    la   t1, queries
    slli t2, s1, 3
    add  t1, t1, t2
    ld   a0, 0(t1)
    call bsearch               # a0 = index or -1
    slli t3, s2, 1
    xor  s2, t3, a0
    addi s1, s1, 1
    addi s0, s0, -1
    jmp  q_loop
q_done:
    call array_checksum
    xor  a0, a0, s2
    syscall puti
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

# quicksort(lo, hi): sort array[lo..hi] in place
    .proc quicksort args=2
quicksort:
    bge  a0, a1, qs_return
    addi sp, sp, -32
    st   ra, 0(sp)
    st   s3, 8(sp)
    st   s4, 16(sp)
    st   s5, 24(sp)
    mov  s3, a0                # lo
    mov  s4, a1                # hi
    call partition             # a0 = pivot index (args still lo/hi)
    mov  s5, a0
    mov  a0, s3
    addi a1, s5, -1
    call quicksort
    addi a0, s5, 1
    mov  a1, s4
    call quicksort
    ld   s5, 24(sp)
    ld   s4, 16(sp)
    ld   s3, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 32
qs_return:
    ret
    .endp

# partition(lo, hi) -> final pivot index (Lomuto, pivot = array[hi])
    .proc partition args=2
partition:
    la   t0, array
    slli t1, a1, 3
    add  t1, t0, t1
    ld   t2, 0(t1)             # pivot value
    mov  t3, a0                # i (store slot)
    mov  t4, a0                # j (scan)
pt_loop:
    bge  t4, a1, pt_done
    slli t5, t4, 3
    add  t5, t0, t5
    ld   t6, 0(t5)
    bge  t6, t2, pt_next       # array[j] >= pivot: leave
    # swap array[i], array[j]
    slli t7, t3, 3
    add  t7, t0, t7
    ld   t8, 0(t7)
    st   t6, 0(t7)
    st   t8, 0(t5)
    addi t3, t3, 1
pt_next:
    addi t4, t4, 1
    jmp  pt_loop
pt_done:
    # swap array[i], array[hi]
    slli t5, t3, 3
    add  t5, t0, t5
    ld   t6, 0(t5)
    st   t2, 0(t5)
    st   t6, 0(t1)
    mov  a0, t3
    ret
    .endp

# bsearch(key) -> index or -1
    .proc bsearch args=1
bsearch:
    la   t1, count
    ld   t1, 0(t1)
    li   t2, 0                 # lo
    addi t3, t1, -1            # hi
bs_loop:
    blt  t3, t2, bs_miss
    ld   t0, arr_ptr(zero)     # global reload (invariant load)
    add  t4, t2, t3
    srai t4, t4, 1             # mid
    slli t5, t4, 3
    add  t5, t0, t5
    ld   t6, 0(t5)             # array[mid] (early probes invariant)
    beq  t6, a0, bs_hit
    blt  t6, a0, bs_right
    addi t3, t4, -1
    jmp  bs_loop
bs_right:
    addi t2, t4, 1
    jmp  bs_loop
bs_hit:
    mov  a0, t4
    ret
bs_miss:
    li   a0, -1
    ret
    .endp

# array_checksum() -> rotating sum over sorted array
    .proc array_checksum args=0
array_checksum:
    la   t0, array
    la   t1, count
    ld   t1, 0(t1)
    li   t2, 0
    li   t3, 0
ac_loop:
    bge  t3, t1, ac_done
    slli t4, t3, 3
    add  t4, t0, t4
    ld   t5, 0(t4)
    slli t6, t2, 3
    srli t2, t2, 61
    or   t2, t6, t2
    add  t2, t2, t5
    addi t3, t3, 1
    jmp  ac_loop
ac_done:
    mov  a0, t2
    ret
    .endp
)";

class QsortWorkload : public Workload
{
  public:
    std::string name() const override { return "qsort"; }

    std::string
    description() const override
    {
        return "recursive quicksort + binary searches (sort/search "
               "stand-in)";
    }

    std::string source() const override { return qsortAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        vp::Rng rng(datasetSeed(name(), dataset));
        const bool train = dataset == "train";
        const std::size_t n = train ? 6000 : 4200;
        std::vector<std::uint64_t> keys(n);
        for (auto &k : keys)
            k = rng.below(1u << 20);
        const std::size_t nq = train ? 1500 : 1000;
        std::vector<std::uint64_t> queries(nq);
        for (std::size_t i = 0; i < nq; ++i) {
            // Half the queries hit existing keys, half are random.
            queries[i] = rng.chance(0.5) ? keys[rng.below(n)]
                                         : rng.below(1u << 20);
        }
        pokeWords(cpu, "array", keys);
        pokeWord(cpu, "count", n);
        pokeWords(cpu, "queries", queries);
        pokeWord(cpu, "nqueries", nq);
    }
};

} // namespace

const Workload &
qsortWorkload()
{
    static const QsortWorkload instance;
    return instance;
}

} // namespace workloads
