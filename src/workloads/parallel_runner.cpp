#include "workloads/parallel_runner.hpp"

#include "instrument/image.hpp"
#include "instrument/manager.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"

namespace workloads
{

ParallelRunner::ParallelRunner(unsigned jobs)
    : workerCount(jobs ? jobs : vp::ThreadPool::hardwareThreads())
{
}

ProfileJobResult
ParallelRunner::runOne(const ProfileJob &job)
{
    vp_assert(job.workload != nullptr, "profile job without workload");
    const vpsim::Program &prog = job.workload->program();

    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, job.cpu);
    core::InstructionProfiler prof(img, job.config);
    if (job.loadsOnly)
        prof.profileLoads(mgr);
    else
        prof.profileAllWrites(mgr);
    mgr.attach(cpu);

    ProfileJobResult out;
    out.workload = job.workload;
    out.dataset = job.dataset;
    out.run = runToCompletion(cpu, *job.workload, job.dataset);
    out.programOutput = cpu.output();
    out.snapshot = core::ProfileSnapshot::fromInstructionProfiler(prof);
    out.totalExecutions = prof.totalExecutions();
    out.profiledExecutions = prof.profiledExecutions();
    out.fractionProfiled = prof.fractionProfiled();
    out.invTop = prof.weightedMetric(&core::ValueProfile::invTop);
    out.invAll = prof.weightedMetric(&core::ValueProfile::invAll);
    out.lvp = prof.weightedMetric(&core::ValueProfile::lvp);
    out.zeroFraction =
        prof.weightedMetric(&core::ValueProfile::zeroFraction);
    double distinct_sum = 0.0;
    std::size_t executed = 0;
    for (const auto &rec : prof.records()) {
        if (rec.totalExecutions == 0)
            continue;
        distinct_sum += static_cast<double>(rec.profile.distinct());
        ++executed;
    }
    out.meanDistinct = executed ? distinct_sum / executed : 0.0;
    out.staticInsts = executed;
    return out;
}

std::vector<ProfileJobResult>
ParallelRunner::run(const std::vector<ProfileJob> &jobs) const
{
    // Assemble every distinct program up front on this thread; after
    // this, workers only read shared immutable state. (program() is
    // itself once-guarded, so this is an optimization plus a clearer
    // contract, not a correctness requirement.)
    for (const auto &job : jobs) {
        vp_assert(job.workload != nullptr,
                  "profile job without workload");
        job.workload->program();
    }

    std::vector<ProfileJobResult> results(jobs.size());
    vp::ThreadPool::parallelFor(
        workerCount, jobs.size(),
        [&](std::size_t i) { results[i] = runOne(jobs[i]); });
    return results;
}

std::vector<ProfileJob>
suiteJobs(const std::string &dataset, bool loads_only,
          const core::InstProfilerConfig &config)
{
    std::vector<ProfileJob> jobs;
    for (const auto *w : allWorkloads()) {
        ProfileJob job;
        job.workload = w;
        job.dataset = dataset;
        job.loadsOnly = loads_only;
        job.config = config;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace workloads
