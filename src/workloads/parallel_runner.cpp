#include "workloads/parallel_runner.hpp"

#include <chrono>

#include "instrument/image.hpp"
#include "instrument/manager.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace workloads
{

ParallelRunner::ParallelRunner(unsigned jobs)
    : workerCount(jobs ? jobs : vp::ThreadPool::hardwareThreads())
{
}

ProfileJobResult
ParallelRunner::runOne(const ProfileJob &job)
{
    vp_assert(job.workload != nullptr, "profile job without workload");
    const vpsim::Program &prog = job.workload->program();

    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, job.cpu);
    core::InstructionProfiler prof(img, job.config);
    if (job.loadsOnly)
        prof.profileLoads(mgr);
    else
        prof.profileAllWrites(mgr);
    mgr.attach(cpu);

    ProfileJobResult out;
    out.workload = job.workload;
    out.dataset = job.dataset;
    out.run = runToCompletion(cpu, *job.workload, job.dataset);
    out.programOutput = cpu.output();
    out.snapshot = core::ProfileSnapshot::fromInstructionProfiler(prof);
    out.totalExecutions = prof.totalExecutions();
    out.profiledExecutions = prof.profiledExecutions();
    out.fractionProfiled = prof.fractionProfiled();
    out.invTop = prof.weightedMetric(&core::ValueProfile::invTop);
    out.invAll = prof.weightedMetric(&core::ValueProfile::invAll);
    out.lvp = prof.weightedMetric(&core::ValueProfile::lvp);
    out.zeroFraction =
        prof.weightedMetric(&core::ValueProfile::zeroFraction);
    double distinct_sum = 0.0;
    std::size_t executed = 0;
    for (const auto &rec : prof.records()) {
        if (rec.totalExecutions == 0)
            continue;
        distinct_sum += static_cast<double>(rec.profile.distinct());
        ++executed;
    }
    out.meanDistinct = executed ? distinct_sum / executed : 0.0;
    out.staticInsts = executed;
    return out;
}

std::vector<ProfileJobResult>
ParallelRunner::run(const std::vector<ProfileJob> &jobs) const
{
    using clock = std::chrono::steady_clock;
    auto to_us = [](clock::duration d) {
        return static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(d)
                .count());
    };

    // Assemble every distinct program up front on this thread; after
    // this, workers only read shared immutable state. (program() is
    // itself once-guarded, so this is an optimization plus a clearer
    // contract, not a correctness requirement.)
    for (const auto &job : jobs) {
        vp_assert(job.workload != nullptr,
                  "profile job without workload");
        job.workload->program();
    }

    // Shard stats merge into the registry current on *this* thread, so
    // totals land in the same place whether jobs fan out or run inline.
    vp::stats::Registry &parent = vp::stats::current();
    if (vp::stats::enabled())
        parent.gaugeMax("runner.workers",
                        static_cast<double>(workerCount));
    const auto batch_start = clock::now();

    std::vector<ProfileJobResult> results(jobs.size());
    vp::ThreadPool::parallelFor(
        workerCount, jobs.size(), [&](std::size_t i) {
            // Tag this thread's warn()/inform() with the job index so
            // parallel diagnostics are attributable.
            vp::ScopedLogShard shard_tag(static_cast<int>(i));

            const bool collect = vp::stats::enabled();
            auto &tracer = vp::trace::TraceCollector::global();
            vp::stats::Registry shard_stats;
            const std::uint64_t span_start = tracer.nowUs();
            const auto t0 = clock::now();
            {
                // Everything the job records lands in its own
                // registry, mergeable like the TNV tables.
                vp::stats::ScopedRegistry scope(shard_stats);
                results[i] = runOne(jobs[i]);
            }
            const auto t1 = clock::now();

            if (collect) {
                shard_stats.add(vp::stats::Cid::RunnerJobs);
                shard_stats.observe("runner.queue_wait_us",
                                    to_us(t0 - batch_start));
                shard_stats.observe("runner.shard_wall_us",
                                    to_us(t1 - t0));
            }
            if (tracer.enabled()) {
                vp::trace::TraceEvent ev;
                ev.name = jobs[i].workload->name() + ":" +
                          jobs[i].dataset;
                ev.tid = vp::trace::workerId();
                ev.tsUs = span_start;
                ev.durUs = static_cast<std::uint64_t>(to_us(t1 - t0));
                ev.args.emplace_back("shard", std::to_string(i));
                // Annotate the span with this job's counter deltas —
                // its registry holds exactly the work it did.
                for (unsigned c = 0;
                     c < static_cast<unsigned>(
                             vp::stats::Cid::NumCounters);
                     ++c) {
                    const auto id = static_cast<vp::stats::Cid>(c);
                    const std::uint64_t v = shard_stats.counter(id);
                    if (v)
                        ev.args.emplace_back(vp::stats::counterName(id),
                                             std::to_string(v));
                }
                tracer.addComplete(std::move(ev));
            }
            if (collect) {
                results[i].stats = shard_stats;
                parent.merge(shard_stats);
            }
        });
    return results;
}

std::vector<ProfileJob>
suiteJobs(const std::string &dataset, bool loads_only,
          const core::InstProfilerConfig &config)
{
    std::vector<ProfileJob> jobs;
    for (const auto *w : allWorkloads()) {
        ProfileJob job;
        job.workload = w;
        job.dataset = dataset;
        job.loadsOnly = loads_only;
        job.config = config;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace workloads
