/**
 * @file
 * Sharded parallel profiling engine.
 *
 * A ProfileJob is one independent (workload, input) profiling run. The
 * ParallelRunner executes a batch of jobs on a worker-thread pool —
 * each job builds its own Cpu, InstrumentManager and
 * InstructionProfiler shard, so workers share only immutable state
 * (the assembled Programs) — and returns per-job results in job
 * order, which keeps every consumer's output deterministic and
 * byte-identical to a sequential (--jobs 1) run.
 *
 * Shard results are ProfileSnapshots; snapshots of the *same* program
 * can be aggregated post-hoc with ProfileSnapshot::merge (see
 * DESIGN.md, "Shard-and-merge semantics", for the documented
 * tolerance vs. one sequential table).
 */

#ifndef VP_WORKLOADS_PARALLEL_RUNNER_HPP
#define VP_WORKLOADS_PARALLEL_RUNNER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/instruction_profiler.hpp"
#include "core/snapshot.hpp"
#include "support/stats_registry.hpp"
#include "workloads/workload.hpp"

namespace workloads
{

/** One independent (workload, input) profiling run. */
struct ProfileJob
{
    const Workload *workload = nullptr;
    std::string dataset = "train";
    /** Profile load results only instead of all register writes. */
    bool loadsOnly = false;
    core::InstProfilerConfig config;
    vpsim::CpuConfig cpu{16u << 20, 500'000'000};
};

/** Everything a report consumer needs from one finished shard. */
struct ProfileJobResult
{
    const Workload *workload = nullptr;
    std::string dataset;
    core::ProfileSnapshot snapshot;
    vpsim::RunResult run;
    std::string programOutput;

    std::uint64_t totalExecutions = 0;
    std::uint64_t profiledExecutions = 0;
    double fractionProfiled = 1.0;
    /** Execution-weighted means over all profiled instructions. */
    double invTop = 0.0;
    double invAll = 0.0;
    double lvp = 0.0;
    double zeroFraction = 0.0;
    /** Mean distinct-value count per executed static instruction. */
    double meanDistinct = 0.0;
    std::size_t staticInsts = 0;

    /**
     * This shard's runtime stats (counters, shard wall time, queue
     * wait), populated when stats collection is enabled. The runner
     * also merges every shard registry into the registry that was
     * current on the calling thread, so suite totals aggregate there
     * regardless of job count.
     */
    vp::stats::Registry stats;
};

/** Executes profiling jobs across worker threads. */
class ParallelRunner
{
  public:
    /** @param jobs worker count; 0 means one per hardware thread. */
    explicit ParallelRunner(unsigned jobs = 0);

    /** Effective worker count. */
    unsigned jobCount() const { return workerCount; }

    /**
     * Run one job in the calling thread — the shard body. Exposed so
     * sequential callers measure exactly what parallel workers run.
     */
    static ProfileJobResult runOne(const ProfileJob &job);

    /**
     * Run all jobs, fanning out across the pool, and return results
     * in job order. Programs are pre-assembled on the calling thread
     * so workers only ever read them.
     */
    std::vector<ProfileJobResult>
    run(const std::vector<ProfileJob> &jobs) const;

  private:
    unsigned workerCount;
};

/**
 * Convenience: one job per registered workload, in canonical order.
 */
std::vector<ProfileJob>
suiteJobs(const std::string &dataset, bool loads_only = false,
          const core::InstProfilerConfig &config = {});

} // namespace workloads

#endif // VP_WORKLOADS_PARALLEL_RUNNER_HPP
