/**
 * @file
 * Helpers for writing workload inputs into guest memory via data
 * symbols.
 */

#ifndef VP_WORKLOADS_INJECT_HPP
#define VP_WORKLOADS_INJECT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "vpsim/cpu.hpp"

namespace workloads
{

/** Store a 64-bit word at symbol + index*8. */
void pokeWord(vpsim::Cpu &cpu, const std::string &symbol,
              std::uint64_t value, std::uint64_t index = 0);

/** Copy a byte buffer to the symbol's address. */
void pokeBytes(vpsim::Cpu &cpu, const std::string &symbol,
               const std::vector<std::uint8_t> &bytes);

/** Copy 64-bit words to the symbol's address. */
void pokeWords(vpsim::Cpu &cpu, const std::string &symbol,
               const std::vector<std::uint64_t> &words);

/** Deterministic per-(workload,dataset) RNG seed. */
std::uint64_t datasetSeed(const std::string &workload,
                          const std::string &dataset);

} // namespace workloads

#endif // VP_WORKLOADS_INJECT_HPP
