/**
 * @file
 * "life" workload — Conway's Game of Life on a byte grid, standing in
 * for stencil/array integer codes (099.go flavour: grid scans with
 * mostly-dead cells). Neighbor-count loads are heavily zero-valued,
 * reproducing the paper's observation that a large share of load
 * values are zero.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const lifeAsm = R"(
# life: Conway's Game of Life generations over a byte grid
    .data
width:       .word 0
height:      .word 0
generations: .word 0
grid:        .space 4096
next:        .space 4096

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    la   t0, generations
    ld   s0, 0(t0)
gen_loop:
    beqz s0, gen_done
    call step_grid
    call copy_back
    addi s0, s0, -1
    jmp  gen_loop
gen_done:
    call grid_checksum
    syscall puti
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

# step_grid: compute one generation from grid into next
    .proc step_grid args=0
step_grid:
    addi sp, sp, -8
    st   ra, 0(sp)
    la   t8, width
    ld   t8, 0(t8)
    la   t9, height
    ld   t9, 0(t9)
    li   s1, 0                # y
sg_row:
    bge  s1, t9, sg_done
    li   s2, 0                # x
sg_col:
    bge  s2, t8, sg_row_next
    mov  a0, s2
    mov  a1, s1
    call count_neighbors      # a0 = live neighbor count
    mov  s4, a0
    # current cell
    mul  t0, s1, t8
    add  t0, t0, s2
    la   t1, grid
    add  t1, t1, t0
    lbu  t2, 0(t1)
    # rule: alive if (n == 3) or (alive and n == 2)
    li   t3, 0
    li   t4, 3
    beq  s4, t4, sg_alive
    beqz t2, sg_write
    li   t4, 2
    bne  s4, t4, sg_write
sg_alive:
    li   t3, 1
sg_write:
    la   t4, next
    add  t4, t4, t0
    sb   t3, 0(t4)
    addi s2, s2, 1
    jmp  sg_col
sg_row_next:
    addi s1, s1, 1
    jmp  sg_row
sg_done:
    ld   ra, 0(sp)
    addi sp, sp, 8
    ret
    .endp

# count_neighbors(x, y) -> live neighbors (torus wraparound)
    .proc count_neighbors args=2
count_neighbors:
    la   t8, width
    ld   t8, 0(t8)
    la   t9, height
    ld   t9, 0(t9)
    li   t0, 0                # count
    li   t1, -1               # dy
cn_dy:
    li   t5, 2
    bge  t1, t5, cn_done
    li   t2, -1               # dx
cn_dx:
    bge  t2, t5, cn_dy_next
    or   t3, t1, t2
    beqz t3, cn_dx_next       # skip (0,0)
    add  t3, a1, t1           # ny
    add  t4, a0, t2           # nx
    # wrap ny
    bge  t3, zero, cn_ny_lo
    add  t3, t3, t9
cn_ny_lo:
    blt  t3, t9, cn_ny_ok
    sub  t3, t3, t9
cn_ny_ok:
    # wrap nx
    bge  t4, zero, cn_nx_lo
    add  t4, t4, t8
cn_nx_lo:
    blt  t4, t8, cn_nx_ok
    sub  t4, t4, t8
cn_nx_ok:
    mul  t6, t3, t8
    add  t6, t6, t4
    la   t7, grid
    add  t7, t7, t6
    lbu  t6, 0(t7)            # neighbor cell (mostly zero)
    add  t0, t0, t6
cn_dx_next:
    addi t2, t2, 1
    jmp  cn_dx
cn_dy_next:
    addi t1, t1, 1
    jmp  cn_dy
cn_done:
    mov  a0, t0
    ret
    .endp

# copy_back: next -> grid
    .proc copy_back args=0
copy_back:
    la   t8, width
    ld   t8, 0(t8)
    la   t9, height
    ld   t9, 0(t9)
    mul  t0, t8, t9           # cells
    la   t1, grid
    la   t2, next
    li   t3, 0
cb_loop:
    bge  t3, t0, cb_done
    add  t4, t2, t3
    lbu  t5, 0(t4)
    add  t4, t1, t3
    sb   t5, 0(t4)
    addi t3, t3, 1
    jmp  cb_loop
cb_done:
    ret
    .endp

# grid_checksum: rotating xor over all cells -> a0
    .proc grid_checksum args=0
grid_checksum:
    la   t8, width
    ld   t8, 0(t8)
    la   t9, height
    ld   t9, 0(t9)
    mul  t0, t8, t9
    la   t1, grid
    li   t2, 0
    li   t3, 0
gc_loop:
    bge  t3, t0, gc_done
    add  t4, t1, t3
    lbu  t5, 0(t4)
    slli t6, t2, 7
    srli t2, t2, 57
    or   t2, t6, t2
    add  t2, t2, t5
    addi t3, t3, 1
    jmp  gc_loop
gc_done:
    mov  a0, t2
    ret
    .endp
)";

class LifeWorkload : public Workload
{
  public:
    std::string name() const override { return "life"; }

    std::string
    description() const override
    {
        return "Game of Life stencil generations (grid-scan stand-in)";
    }

    std::string source() const override { return lifeAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        vp::Rng rng(datasetSeed(name(), dataset));
        const bool train = dataset == "train";
        const std::uint64_t w = train ? 32 : 28;
        const std::uint64_t h = train ? 32 : 28;
        std::vector<std::uint8_t> cells(w * h, 0);
        const double density = train ? 0.18 : 0.28;
        for (auto &c : cells)
            c = rng.chance(density) ? 1 : 0;
        pokeBytes(cpu, "grid", cells);
        pokeWord(cpu, "width", w);
        pokeWord(cpu, "height", h);
        pokeWord(cpu, "generations", train ? 16 : 12);
    }
};

} // namespace

const Workload &
lifeWorkload()
{
    static const LifeWorkload instance;
    return instance;
}

} // namespace workloads
