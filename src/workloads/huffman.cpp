/**
 * @file
 * "huffman" workload — frequency counting, array-based Huffman tree
 * construction, and encode-length computation, standing in for
 * table/pointer-heavy integer codes (147.vortex flavour). The
 * tree-build phase repeatedly scans for the two lightest active
 * nodes (argmin loops over mostly-stable weights) and the encode
 * phase walks parent links leaf-to-root — loads over a structure
 * that is perfectly invariant once built.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const huffmanAsm = R"(
# huffman: frequency count + tree build + encode length
    .data
input_len:   .word 0
input:       .space 16384
freq:        .space 2048           # 256 x 8-byte counts
weight:      .space 4096           # 512 x 8-byte node weights
parent:      .space 4096           # 512 x 8-byte parent ids (+1; 0 = none)
active:      .space 512            # 512 x 1-byte "in heap" flags
nnodes:      .word 0

    .text
    .proc main args=0
main:
    addi sp, sp, -8
    st   ra, 0(sp)
    call count_freqs
    call init_leaves
    call build_tree
    call encode_length         # a0 = total encoded bits
    mov  s0, a0
    call freq_checksum
    xor  a0, a0, s0
    syscall puti
    li   a0, 0
    ld   ra, 0(sp)
    addi sp, sp, 8
    syscall exit
    .endp

# count_freqs: freq[b]++ for every input byte
    .proc count_freqs args=0
count_freqs:
    la   t0, input
    la   t1, input_len
    ld   t1, 0(t1)
    add  t1, t0, t1
    la   t2, freq
cf_loop:
    bgeu t0, t1, cf_done
    lbu  t3, 0(t0)
    slli t3, t3, 3
    add  t3, t2, t3
    ld   t4, 0(t3)
    addi t4, t4, 1
    st   t4, 0(t3)
    addi t0, t0, 1
    jmp  cf_loop
cf_done:
    ret
    .endp

# init_leaves: activate leaves with nonzero frequency
    .proc init_leaves args=0
init_leaves:
    li   t0, 0                 # symbol
    la   t1, freq
    la   t2, weight
    la   t3, active
    li   t4, 0                 # active count
il_loop:
    li   t5, 256
    bge  t0, t5, il_done
    slli t5, t0, 3
    add  t6, t1, t5
    ld   t6, 0(t6)             # freq[s]
    beqz t6, il_next
    add  t7, t2, t5
    st   t6, 0(t7)             # weight[s] = freq[s]
    add  t7, t3, t0
    li   t8, 1
    sb   t8, 0(t7)             # active[s] = 1
    addi t4, t4, 1
il_next:
    addi t0, t0, 1
    jmp  il_loop
il_done:
    la   t5, nnodes
    li   t6, 256               # next internal node id
    st   t6, 0(t5)
    mov  a0, t4
    ret
    .endp

# find_min() -> a0 = active node with smallest weight, or -1
    .proc find_min args=0
find_min:
    la   t0, active
    la   t1, weight
    la   t2, nnodes
    ld   t2, 0(t2)             # scan 0..nnodes-1
    li   t3, 0                 # index
    li   t4, -1                # best id
    li   t5, 0x7fffffffffffffff
fm_loop:
    bge  t3, t2, fm_done
    add  t6, t0, t3
    lbu  t6, 0(t6)             # active flag (mostly 0 late on)
    beqz t6, fm_next
    slli t6, t3, 3
    add  t6, t1, t6
    ld   t6, 0(t6)
    bge  t6, t5, fm_next
    mov  t5, t6
    mov  t4, t3
fm_next:
    addi t3, t3, 1
    jmp  fm_loop
fm_done:
    mov  a0, t4
    ret
    .endp

# build_tree: classic two-min merge until one node remains
    .proc build_tree args=0
build_tree:
    addi sp, sp, -24
    st   ra, 0(sp)
    st   s1, 8(sp)
    st   s2, 16(sp)
bt_loop:
    call find_min
    blt  a0, zero, bt_done
    mov  s1, a0
    # deactivate first min
    la   t0, active
    add  t0, t0, s1
    sb   zero, 0(t0)
    call find_min
    blt  a0, zero, bt_single
    mov  s2, a0
    la   t0, active
    add  t0, t0, s2
    sb   zero, 0(t0)
    # create internal node id = nnodes
    la   t0, nnodes
    ld   t1, 0(t0)
    la   t2, weight
    slli t3, s1, 3
    add  t3, t2, t3
    ld   t4, 0(t3)
    slli t3, s2, 3
    add  t3, t2, t3
    ld   t5, 0(t3)
    add  t4, t4, t5            # combined weight
    slli t3, t1, 3
    add  t3, t2, t3
    st   t4, 0(t3)
    # parents (stored +1 so 0 means "root/none")
    la   t2, parent
    addi t5, t1, 1
    slli t3, s1, 3
    add  t3, t2, t3
    st   t5, 0(t3)
    slli t3, s2, 3
    add  t3, t2, t3
    st   t5, 0(t3)
    # activate the new node, bump nnodes
    la   t2, active
    add  t2, t2, t1
    li   t3, 1
    sb   t3, 0(t2)
    addi t1, t1, 1
    st   t1, 0(t0)
    jmp  bt_loop
bt_single:
    # s1 was the root; leave it deactivated
bt_done:
    ld   s2, 16(sp)
    ld   s1, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 24
    ret
    .endp

# depth(symbol) -> code length by walking parent links
    .proc depth args=1
depth:
    li   t0, 0
    mov  t1, a0
    la   t2, parent
dp_loop:
    slli t3, t1, 3
    add  t3, t2, t3
    ld   t3, 0(t3)             # parent+1 (invariant once built)
    beqz t3, dp_done
    addi t0, t0, 1
    addi t1, t3, -1
    jmp  dp_loop
dp_done:
    mov  a0, t0
    ret
    .endp

# encode_length: sum of code lengths over the input -> a0
    .proc encode_length args=0
encode_length:
    addi sp, sp, -32
    st   ra, 0(sp)
    st   s1, 8(sp)
    st   s2, 16(sp)
    st   s3, 24(sp)
    la   s1, input
    la   t0, input_len
    ld   t0, 0(t0)
    add  s2, s1, t0
    li   t9, 0                 # total bits (t9 preserved by depth)
el_loop:
    bgeu s1, s2, el_done
    lbu  a0, 0(s1)
    mov  s3, t9                # save across call (s3 scratch here)
    call depth
    add  t9, s3, a0
    addi s1, s1, 1
    jmp  el_loop
el_done:
    mov  a0, t9
    ld   s3, 24(sp)
    ld   s2, 16(sp)
    ld   s1, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 32
    ret
    .endp

# freq_checksum: rotating xor over the frequency table
    .proc freq_checksum args=0
freq_checksum:
    la   t0, freq
    li   t1, 0
    li   t2, 0
fc_loop:
    li   t4, 256
    bge  t1, t4, fc_done
    slli t5, t1, 3
    add  t5, t0, t5
    ld   t6, 0(t5)
    slli t3, t2, 11
    srli t2, t2, 53
    or   t2, t3, t2
    add  t2, t2, t6
    addi t1, t1, 1
    jmp  fc_loop
fc_done:
    mov  a0, t2
    ret
    .endp
)";

/** Zipf-ish text so the Huffman tree is deep and skewed. */
std::vector<std::uint8_t>
makeInput(std::uint64_t seed, std::size_t len)
{
    vp::Rng rng(seed);
    std::vector<std::uint8_t> bytes;
    bytes.reserve(len);
    static const char common[] = "eeeettaaoinshrdlu ";
    while (bytes.size() < len) {
        if (rng.chance(0.75)) {
            bytes.push_back(static_cast<std::uint8_t>(
                common[rng.below(sizeof(common) - 1)]));
        } else {
            bytes.push_back(
                static_cast<std::uint8_t>(33 + rng.below(90)));
        }
    }
    return bytes;
}

class HuffmanWorkload : public Workload
{
  public:
    std::string name() const override { return "huffman"; }

    std::string
    description() const override
    {
        return "Huffman tree build + encode length (table/pointer "
               "stand-in)";
    }

    std::string source() const override { return huffmanAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        const bool train = dataset == "train";
        const auto bytes = makeInput(datasetSeed(name(), dataset),
                                     train ? 12000 : 8500);
        pokeBytes(cpu, "input", bytes);
        pokeWord(cpu, "input_len", bytes.size());
    }
};

} // namespace

const Workload &
huffmanWorkload()
{
    static const HuffmanWorkload instance;
    return instance;
}

} // namespace workloads
