#include "instrument/image.hpp"

namespace instr
{

Image::Image(const vpsim::Program &program) : prog(program) {}

const vpsim::Procedure *
Image::procAtEntry(std::uint32_t pc) const
{
    if (indexedProcs != prog.procs.size()) {
        entryToProc.clear();
        for (std::size_t i = 0; i < prog.procs.size(); ++i)
            entryToProc[prog.procs[i].entry] = i;
        indexedProcs = prog.procs.size();
    }
    auto it = entryToProc.find(pc);
    return it == entryToProc.end() ? nullptr : &prog.procs[it->second];
}

const vpsim::Cfg &
Image::cfg(const vpsim::Procedure &proc) const
{
    auto it = cfgCache.find(proc.entry);
    if (it == cfgCache.end()) {
        it = cfgCache
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(proc.entry),
                          std::forward_as_tuple(prog, proc))
                 .first;
    }
    return it->second;
}

std::vector<std::uint32_t>
Image::instsWhere(const std::function<bool(std::uint32_t,
                                           const vpsim::Inst &)> &pred)
    const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t pc = 0; pc < prog.code.size(); ++pc)
        if (pred(pc, prog.code[pc]))
            out.push_back(pc);
    return out;
}

std::vector<std::uint32_t>
Image::regWritingInsts() const
{
    return instsWhere([](std::uint32_t, const vpsim::Inst &inst) {
        return vpsim::writesDest(inst);
    });
}

std::vector<std::uint32_t>
Image::loadInsts() const
{
    return instsWhere([](std::uint32_t, const vpsim::Inst &inst) {
        return vpsim::isLoad(inst.op);
    });
}

} // namespace instr
