#include "instrument/image.hpp"

namespace instr
{

Image::Image(const vpsim::Program &program) : prog(program)
{
    for (const auto &p : prog.procs)
        entryToProc[p.entry] = &p;
}

const vpsim::Procedure *
Image::procAtEntry(std::uint32_t pc) const
{
    auto it = entryToProc.find(pc);
    return it == entryToProc.end() ? nullptr : it->second;
}

const vpsim::Cfg &
Image::cfg(const vpsim::Procedure &proc) const
{
    auto it = cfgCache.find(proc.entry);
    if (it == cfgCache.end()) {
        it = cfgCache
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(proc.entry),
                          std::forward_as_tuple(prog, proc))
                 .first;
    }
    return it->second;
}

std::vector<std::uint32_t>
Image::instsWhere(const std::function<bool(std::uint32_t,
                                           const vpsim::Inst &)> &pred)
    const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t pc = 0; pc < prog.code.size(); ++pc)
        if (pred(pc, prog.code[pc]))
            out.push_back(pc);
    return out;
}

std::vector<std::uint32_t>
Image::regWritingInsts() const
{
    return instsWhere([](std::uint32_t, const vpsim::Inst &inst) {
        return vpsim::writesDest(inst);
    });
}

std::vector<std::uint32_t>
Image::loadInsts() const
{
    return instsWhere([](std::uint32_t, const vpsim::Inst &inst) {
        return vpsim::isLoad(inst.op);
    });
}

} // namespace instr
