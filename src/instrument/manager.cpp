#include "instrument/manager.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace instr
{

InstrumentManager::InstrumentManager(const Image &image)
    : img(image), instTools(image.numInsts())
{
}

void
InstrumentManager::instrumentInst(std::uint32_t pc, Tool *tool)
{
    vp_assert(pc < instTools.size(), "pc %u out of range", pc);
    vp_assert(tool != nullptr, "null tool");
    instTools[pc].push_back(tool);
}

void
InstrumentManager::instrumentInsts(const std::vector<std::uint32_t> &pcs,
                                   Tool *tool)
{
    for (auto pc : pcs)
        instrumentInst(pc, tool);
}

void
InstrumentManager::instrumentLoads(Tool *tool)
{
    vp_assert(tool != nullptr, "null tool");
    loadTools.push_back(tool);
}

void
InstrumentManager::instrumentStores(Tool *tool)
{
    vp_assert(tool != nullptr, "null tool");
    storeTools.push_back(tool);
}

void
InstrumentManager::instrumentCalls(Tool *tool)
{
    vp_assert(tool != nullptr, "null tool");
    callTools.push_back(tool);
}

void
InstrumentManager::removeTool(Tool *tool)
{
    auto scrub = [tool](std::vector<Tool *> &v) {
        v.erase(std::remove(v.begin(), v.end(), tool), v.end());
    };
    for (auto &v : instTools)
        scrub(v);
    scrub(loadTools);
    scrub(storeTools);
    scrub(callTools);
}

void
InstrumentManager::onInst(std::uint32_t pc, const vpsim::Inst &inst,
                          bool wrote, std::uint64_t value)
{
    const auto &tools = instTools[pc];
    if (tools.empty())
        return;
    if (wrote) {
        for (auto *t : tools)
            t->onInstValue(pc, inst, value);
    } else {
        for (auto *t : tools)
            t->onInstNoValue(pc, inst);
    }
}

void
InstrumentManager::onLoad(std::uint32_t pc, std::uint64_t addr,
                          unsigned size, std::uint64_t value)
{
    for (auto *t : loadTools)
        t->onLoadValue(pc, addr, size, value);
}

void
InstrumentManager::onStore(std::uint32_t pc, std::uint64_t addr,
                           unsigned size, std::uint64_t value)
{
    for (auto *t : storeTools)
        t->onStoreValue(pc, addr, size, value);
}

void
InstrumentManager::onCall(std::uint32_t caller_pc,
                          std::uint32_t callee_entry,
                          const std::uint64_t *arg_regs)
{
    if (callTools.empty())
        return;
    const vpsim::Procedure *proc = img.procAtEntry(callee_entry);
    if (!proc)
        return;
    for (auto *t : callTools)
        t->onProcCall(*proc, arg_regs, caller_pc);
}

} // namespace instr
