#include "instrument/manager.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace instr
{

InstrumentManager::InstrumentManager(const Image &image)
    : img(image), instTools(image.numInsts()),
      instMask(image.numInsts(), 0)
{
}

void
InstrumentManager::noteTool(Tool *tool)
{
    if (std::find(allTools.begin(), allTools.end(), tool) ==
        allTools.end())
        allTools.push_back(tool);
}

void
InstrumentManager::instrumentInst(std::uint32_t pc, Tool *tool)
{
    vp_assert(pc < instTools.size(), "pc %u out of range", pc);
    vp_assert(tool != nullptr, "null tool");
    instTools[pc].push_back(tool);
    instMask[pc] = 1;
    noteTool(tool);
}

void
InstrumentManager::instrumentInsts(const std::vector<std::uint32_t> &pcs,
                                   Tool *tool)
{
    for (auto pc : pcs)
        instrumentInst(pc, tool);
}

void
InstrumentManager::instrumentLoads(Tool *tool)
{
    vp_assert(tool != nullptr, "null tool");
    loadTools.push_back(tool);
    noteTool(tool);
}

void
InstrumentManager::instrumentStores(Tool *tool)
{
    vp_assert(tool != nullptr, "null tool");
    storeTools.push_back(tool);
    noteTool(tool);
}

void
InstrumentManager::instrumentCalls(Tool *tool)
{
    vp_assert(tool != nullptr, "null tool");
    callTools.push_back(tool);
    noteTool(tool);
}

void
InstrumentManager::growTo(std::size_t num_insts)
{
    if (num_insts <= instTools.size())
        return;
    instTools.resize(num_insts);
    instMask.resize(num_insts, 0);
}

void
InstrumentManager::onPatchPoint(vpsim::Cpu &cpu)
{
    for (auto *t : allTools)
        t->onPatchPoint(cpu);
}

void
InstrumentManager::removeTool(Tool *tool)
{
    auto scrub = [tool](std::vector<Tool *> &v) {
        v.erase(std::remove(v.begin(), v.end(), tool), v.end());
    };
    for (std::size_t pc = 0; pc < instTools.size(); ++pc) {
        scrub(instTools[pc]);
        instMask[pc] = instTools[pc].empty() ? 0 : 1;
    }
    scrub(loadTools);
    scrub(storeTools);
    scrub(callTools);
    scrub(allTools);
}

const std::uint8_t *
InstrumentManager::instEventFilter() const
{
    return instMask.data();
}

unsigned
InstrumentManager::eventInterest() const
{
    unsigned interest = 0;
    for (const auto &tools : instTools) {
        if (!tools.empty()) {
            interest |= kInterestInst;
            break;
        }
    }
    if (!loadTools.empty())
        interest |= kInterestLoad;
    if (!storeTools.empty())
        interest |= kInterestStore;
    if (!callTools.empty())
        interest |= kInterestCall;
    return interest;
}

void
InstrumentManager::onEvents(const vpsim::ExecEvent *events,
                            std::size_t n,
                            const std::uint64_t *arg_regs)
{
    // Sole-tool fast path: hand the raw batch to the tool and let it
    // self-filter — one virtual call per batch, no routing tables.
    if (allTools.size() == 1 && allTools[0]->wantsEventBlocks()) {
        allTools[0]->onEventBlock(events, n, arg_regs);
        return;
    }

    // Generic path: the same routing the fine-grained hooks perform,
    // without the per-event virtual dispatch through ExecListener.
    for (std::size_t i = 0; i < n; ++i) {
        const vpsim::ExecEvent &e = events[i];
        switch (e.kind) {
          case vpsim::ExecEvent::Kind::Inst:
            for (auto *t : instTools[e.pc])
                t->onInstNoValue(e.pc, *e.inst);
            break;
          case vpsim::ExecEvent::Kind::InstWrote:
            for (auto *t : instTools[e.pc])
                t->onInstValue(e.pc, *e.inst, e.value);
            break;
          case vpsim::ExecEvent::Kind::Load:
            for (auto *t : loadTools)
                t->onLoadValue(e.pc, e.addr, e.size, e.value);
            break;
          case vpsim::ExecEvent::Kind::Store:
            for (auto *t : storeTools)
                t->onStoreValue(e.pc, e.addr, e.size, e.value);
            break;
          case vpsim::ExecEvent::Kind::Call:
            onCall(e.pc, static_cast<std::uint32_t>(e.addr), arg_regs);
            break;
        }
    }
}

void
InstrumentManager::onInst(std::uint32_t pc, const vpsim::Inst &inst,
                          bool wrote, std::uint64_t value)
{
    const auto &tools = instTools[pc];
    if (tools.empty())
        return;
    if (wrote) {
        for (auto *t : tools)
            t->onInstValue(pc, inst, value);
    } else {
        for (auto *t : tools)
            t->onInstNoValue(pc, inst);
    }
}

void
InstrumentManager::onLoad(std::uint32_t pc, std::uint64_t addr,
                          unsigned size, std::uint64_t value)
{
    for (auto *t : loadTools)
        t->onLoadValue(pc, addr, size, value);
}

void
InstrumentManager::onStore(std::uint32_t pc, std::uint64_t addr,
                           unsigned size, std::uint64_t value)
{
    for (auto *t : storeTools)
        t->onStoreValue(pc, addr, size, value);
}

void
InstrumentManager::onCall(std::uint32_t caller_pc,
                          std::uint32_t callee_entry,
                          const std::uint64_t *arg_regs)
{
    if (callTools.empty())
        return;
    const vpsim::Procedure *proc = img.procAtEntry(callee_entry);
    if (!proc)
        return;
    for (auto *t : callTools)
        t->onProcCall(*proc, arg_regs, caller_pc);
}

} // namespace instr
