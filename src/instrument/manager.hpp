/**
 * @file
 * Analysis-tool dispatch, modelled on ATOM's instrumentation phase.
 *
 * A Tool is an analysis object (e.g. a value profiler). At
 * instrumentation time the tool asks the InstrumentManager to route
 * events to it: per-instruction result values (routed per pc, so
 * uninstrumented instructions cost only an empty-slot check, like
 * ATOM's selective insertion), loads, stores, and procedure calls.
 * At run time the manager is the single ExecListener on the Cpu and
 * fans events out to the registered tools.
 *
 * Concurrency contract (sharded parallel profiling): a manager, its
 * Cpu, and its tools together form one *shard* owned by exactly one
 * thread — none of them are internally synchronized. Parallel
 * profiling runs one full shard per job (see
 * workloads::ParallelRunner); the only state shared between shards is
 * immutable (the Program, and the Image each shard builds privately
 * from it). Do not attach one manager to Cpus driven from different
 * threads, and do not register one tool instance with two shards.
 */

#ifndef VP_INSTRUMENT_MANAGER_HPP
#define VP_INSTRUMENT_MANAGER_HPP

#include <cstdint>
#include <vector>

#include "instrument/image.hpp"
#include "vpsim/cpu.hpp"

namespace instr
{

/** Analysis callback interface; override what you need. */
class Tool
{
  public:
    virtual ~Tool() = default;

    /** A routed instruction retired and wrote `value` to its dest. */
    virtual void
    onInstValue(std::uint32_t pc, const vpsim::Inst &inst,
                std::uint64_t value)
    {
        (void)pc; (void)inst; (void)value;
    }

    /** A routed instruction retired without writing a register. */
    virtual void
    onInstNoValue(std::uint32_t pc, const vpsim::Inst &inst)
    {
        (void)pc; (void)inst;
    }

    /** Any load retired (global routing). */
    virtual void
    onLoadValue(std::uint32_t pc, std::uint64_t addr, unsigned size,
                std::uint64_t value)
    {
        (void)pc; (void)addr; (void)size; (void)value;
    }

    /** Any store retired (global routing). */
    virtual void
    onStoreValue(std::uint32_t pc, std::uint64_t addr, unsigned size,
                 std::uint64_t value)
    {
        (void)pc; (void)addr; (void)size; (void)value;
    }

    /**
     * A call reached a known procedure entry (global routing).
     * @param caller_pc  the call instruction's address — lets tools
     *                   profile per call site (context sensitivity)
     */
    virtual void
    onProcCall(const vpsim::Procedure &proc, const std::uint64_t *args,
               std::uint32_t caller_pc)
    {
        (void)proc; (void)args; (void)caller_pc;
    }
};

/** Routes Cpu events to registered tools. */
class InstrumentManager : public vpsim::ExecListener
{
  public:
    explicit InstrumentManager(const Image &image);

    /** Route result values of one static instruction to a tool. */
    void instrumentInst(std::uint32_t pc, Tool *tool);
    /** Route result values of many instructions to a tool. */
    void instrumentInsts(const std::vector<std::uint32_t> &pcs,
                         Tool *tool);
    /** Route all loads (dynamic) to a tool. */
    void instrumentLoads(Tool *tool);
    /** Route all stores (dynamic) to a tool. */
    void instrumentStores(Tool *tool);
    /** Route calls to declared procedures to a tool. */
    void instrumentCalls(Tool *tool);

    /** Remove a tool from every routing table. */
    void removeTool(Tool *tool);

    /** Attach to / detach from a Cpu as its listener. */
    void attach(vpsim::Cpu &cpu) { cpu.addListener(this); }
    void detach(vpsim::Cpu &cpu) { cpu.removeListener(this); }

    const Image &image() const { return img; }

    // ExecListener interface ------------------------------------------
    void onInst(std::uint32_t pc, const vpsim::Inst &inst, bool wrote,
                std::uint64_t value) override;
    void onLoad(std::uint32_t pc, std::uint64_t addr, unsigned size,
                std::uint64_t value) override;
    void onStore(std::uint32_t pc, std::uint64_t addr, unsigned size,
                 std::uint64_t value) override;
    void onCall(std::uint32_t caller_pc, std::uint32_t callee_entry,
                const std::uint64_t *arg_regs) override;

  private:
    const Image &img;
    /** Per-pc tool lists; empty vectors for uninstrumented pcs. */
    std::vector<std::vector<Tool *>> instTools;
    std::vector<Tool *> loadTools;
    std::vector<Tool *> storeTools;
    std::vector<Tool *> callTools;
};

} // namespace instr

#endif // VP_INSTRUMENT_MANAGER_HPP
