/**
 * @file
 * Analysis-tool dispatch, modelled on ATOM's instrumentation phase.
 *
 * A Tool is an analysis object (e.g. a value profiler). At
 * instrumentation time the tool asks the InstrumentManager to route
 * events to it: per-instruction result values (routed per pc, so
 * uninstrumented instructions cost only an empty-slot check, like
 * ATOM's selective insertion), loads, stores, and procedure calls.
 * At run time the manager is the single ExecListener on the Cpu and
 * fans events out to the registered tools.
 *
 * Concurrency contract (sharded parallel profiling): a manager, its
 * Cpu, and its tools together form one *shard* owned by exactly one
 * thread — none of them are internally synchronized. Parallel
 * profiling runs one full shard per job (see
 * workloads::ParallelRunner); the only state shared between shards is
 * immutable (the Program, and the Image each shard builds privately
 * from it). Do not attach one manager to Cpus driven from different
 * threads, and do not register one tool instance with two shards.
 */

#ifndef VP_INSTRUMENT_MANAGER_HPP
#define VP_INSTRUMENT_MANAGER_HPP

#include <cstdint>
#include <vector>

#include "instrument/image.hpp"
#include "vpsim/cpu.hpp"

namespace instr
{

/** Analysis callback interface; override what you need. */
class Tool
{
  public:
    virtual ~Tool() = default;

    /** A routed instruction retired and wrote `value` to its dest. */
    virtual void
    onInstValue(std::uint32_t pc, const vpsim::Inst &inst,
                std::uint64_t value)
    {
        (void)pc; (void)inst; (void)value;
    }

    /** A routed instruction retired without writing a register. */
    virtual void
    onInstNoValue(std::uint32_t pc, const vpsim::Inst &inst)
    {
        (void)pc; (void)inst;
    }

    /** Any load retired (global routing). */
    virtual void
    onLoadValue(std::uint32_t pc, std::uint64_t addr, unsigned size,
                std::uint64_t value)
    {
        (void)pc; (void)addr; (void)size; (void)value;
    }

    /** Any store retired (global routing). */
    virtual void
    onStoreValue(std::uint32_t pc, std::uint64_t addr, unsigned size,
                 std::uint64_t value)
    {
        (void)pc; (void)addr; (void)size; (void)value;
    }

    /**
     * A call reached a known procedure entry (global routing).
     * @param caller_pc  the call instruction's address — lets tools
     *                   profile per call site (context sensitivity)
     */
    virtual void
    onProcCall(const vpsim::Procedure &proc, const std::uint64_t *args,
               std::uint32_t caller_pc)
    {
        (void)proc; (void)args; (void)caller_pc;
    }

    // Whole-batch delivery ---------------------------------------------

    /**
     * Opt in to onEventBlock. A tool may return true only if
     * processing a raw event batch itself is behaviourally identical
     * to receiving its routed per-event callbacks — i.e. the tool can
     * re-derive its own routing (which pcs / which event kinds it
     * registered for) and skip everything else.
     */
    virtual bool wantsEventBlocks() const { return false; }

    /**
     * An entire interpreter event batch, retirement-ordered and
     * *unrouted*: it contains every event of the batch, not only the
     * ones this tool registered for, so the tool must self-filter.
     * Called instead of the per-event callbacks when this tool is the
     * manager's only registered tool and wantsEventBlocks() — one
     * virtual call per basic block instead of one per event.
     * `arg_regs` is valid for an (at most one, always last) Call
     * event, exactly as in vpsim::ExecListener::onEvents.
     */
    virtual void
    onEventBlock(const vpsim::ExecEvent *events, std::size_t n,
                 const std::uint64_t *arg_regs)
    {
        (void)events; (void)n; (void)arg_regs;
    }

    /**
     * The Cpu parked at a patch point (see
     * vpsim::ExecListener::onPatchPoint) — the only moment a tool may
     * grow the Program or install call redirects. A tool that does
     * grow the program must also call InstrumentManager::growTo so the
     * routing tables cover the new instructions.
     */
    virtual void onPatchPoint(vpsim::Cpu &cpu) { (void)cpu; }
};

/** Routes Cpu events to registered tools. */
class InstrumentManager : public vpsim::ExecListener
{
  public:
    explicit InstrumentManager(const Image &image);

    /** Route result values of one static instruction to a tool. */
    void instrumentInst(std::uint32_t pc, Tool *tool);
    /** Route result values of many instructions to a tool. */
    void instrumentInsts(const std::vector<std::uint32_t> &pcs,
                         Tool *tool);
    /** Route all loads (dynamic) to a tool. */
    void instrumentLoads(Tool *tool);
    /** Route all stores (dynamic) to a tool. */
    void instrumentStores(Tool *tool);
    /** Route calls to declared procedures to a tool. */
    void instrumentCalls(Tool *tool);

    /** Remove a tool from every routing table. */
    void removeTool(Tool *tool);

    /**
     * Grow the per-pc routing tables to cover a program that gained
     * instructions (adaptive specialization appends guarded clones at
     * run time). New pcs start uninstrumented. Only call at a patch
     * point: the interpreter latches instEventFilter()'s pointer per
     * entry, and growth may reallocate it.
     */
    void growTo(std::size_t num_insts);

    /** Attach to / detach from a Cpu as its listener. */
    void attach(vpsim::Cpu &cpu) { cpu.addListener(this); }
    void detach(vpsim::Cpu &cpu) { cpu.removeListener(this); }

    const Image &image() const { return img; }

    // ExecListener interface ------------------------------------------
    /**
     * Batch entry point — the only one the interpreter calls. Routes
     * each event through the per-pc / global tool tables; when exactly
     * one tool is registered and it opted in (Tool::wantsEventBlocks),
     * the whole batch is forwarded to Tool::onEventBlock instead, so
     * the per-event routing work disappears from the hot path.
     */
    void onEvents(const vpsim::ExecEvent *events, std::size_t n,
                  const std::uint64_t *arg_regs) override;

    /**
     * Exactly the event kinds some tool registered for: instruction
     * events only when at least one pc is instrumented, loads/stores/
     * calls only when the corresponding global table is nonempty. A
     * manager with no tools reports no interest, so an attached but
     * idle manager leaves the interpreter at native speed.
     */
    unsigned eventInterest() const override;

    /**
     * Per-pc filter mirroring the instTools tables: a pc's byte is
     * nonzero exactly when some tool instrumented it, so retirements
     * of uninstrumented instructions never materialize events when
     * this manager is the Cpu's sole listener.
     */
    const std::uint8_t *instEventFilter() const override;

    void onInst(std::uint32_t pc, const vpsim::Inst &inst, bool wrote,
                std::uint64_t value) override;
    void onLoad(std::uint32_t pc, std::uint64_t addr, unsigned size,
                std::uint64_t value) override;
    void onStore(std::uint32_t pc, std::uint64_t addr, unsigned size,
                 std::uint64_t value) override;
    void onCall(std::uint32_t caller_pc, std::uint32_t callee_entry,
                const std::uint64_t *arg_regs) override;

    /** Forward the patch point to every registered tool. */
    void onPatchPoint(vpsim::Cpu &cpu) override;

  private:
    /** Track a registration for the sole-tool fast path. */
    void noteTool(Tool *tool);

    const Image &img;
    /** Per-pc tool lists; empty vectors for uninstrumented pcs. */
    std::vector<std::vector<Tool *>> instTools;
    /** instTools[pc].empty() mirrored as bytes (see instEventFilter). */
    std::vector<std::uint8_t> instMask;
    std::vector<Tool *> loadTools;
    std::vector<Tool *> storeTools;
    std::vector<Tool *> callTools;
    /** Distinct registered tools, in first-registration order. */
    std::vector<Tool *> allTools;
};

} // namespace instr

#endif // VP_INSTRUMENT_MANAGER_HPP
