/**
 * @file
 * Static program-query interface in the style of ATOM [35].
 *
 * ATOM exposes an executable as Obj -> Proc -> Block -> Inst and lets
 * an instrumentation tool iterate those elements to decide where to
 * insert analysis calls. Image provides the same navigation over a
 * VPSim Program: procedures, basic blocks (computed per procedure),
 * and instructions with class predicates.
 */

#ifndef VP_INSTRUMENT_IMAGE_HPP
#define VP_INSTRUMENT_IMAGE_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "vpsim/cfg.hpp"
#include "vpsim/program.hpp"

namespace instr
{

/** Static view of a program for instrumentation-time queries. */
class Image
{
  public:
    explicit Image(const vpsim::Program &prog);

    const vpsim::Program &program() const { return prog; }

    /** All procedures in the image. */
    const std::vector<vpsim::Procedure> &procedures() const
    {
        return prog.procs;
    }

    /** The procedure whose entry is exactly `pc`, or nullptr. */
    const vpsim::Procedure *procAtEntry(std::uint32_t pc) const;

    /** The procedure containing `pc`, or nullptr. */
    const vpsim::Procedure *procContaining(std::uint32_t pc) const
    {
        return prog.procContaining(pc);
    }

    /** Lazily-built CFG of a procedure. */
    const vpsim::Cfg &cfg(const vpsim::Procedure &proc) const;

    /**
     * Instruction indices satisfying a predicate — the ATOM idiom of
     * "for each instruction in the image, if interesting, instrument".
     */
    std::vector<std::uint32_t>
    instsWhere(const std::function<bool(std::uint32_t,
                                        const vpsim::Inst &)> &pred) const;

    /** All instructions that write a destination register. */
    std::vector<std::uint32_t> regWritingInsts() const;

    /** All load instructions. */
    std::vector<std::uint32_t> loadInsts() const;

    /** Static count of instructions in the image. */
    std::size_t numInsts() const { return prog.code.size(); }

  private:
    const vpsim::Program &prog;
    // Entry pc -> index into prog.procs. Indices (not pointers): the
    // adaptive engine appends clone procedures at run time, and a
    // push_back may reallocate the procs vector. The map is rebuilt
    // lazily whenever the procedure count changed (growth only happens
    // at patch points, never during a lookup).
    mutable std::unordered_map<std::uint32_t, std::size_t> entryToProc;
    mutable std::size_t indexedProcs = 0;
    // Cache keyed by procedure entry pc.
    mutable std::unordered_map<std::uint32_t, vpsim::Cfg> cfgCache;
};

} // namespace instr

#endif // VP_INSTRUMENT_IMAGE_HPP
