/**
 * @file
 * Human-readable profile reports, built on vp::TextTable.
 *
 * These are the views a compiler writer (or one of the examples)
 * inspects: per-instruction metrics with disassembly, the hottest
 * semi-invariant instructions, top memory locations, and procedure
 * parameter summaries.
 */

#ifndef VP_CORE_REPORT_HPP
#define VP_CORE_REPORT_HPP

#include <cstdint>
#include <string>

#include "core/instruction_profiler.hpp"
#include "core/memory_profiler.hpp"
#include "core/parameter_profiler.hpp"
#include "core/snapshot.hpp"
#include "support/table.hpp"

namespace core
{

/**
 * Table of the `limit` most-executed profiled instructions:
 * pc, disassembly, executions, Inv-Top, Inv-All, LVP, Diff, top value.
 */
vp::TextTable instructionReport(const InstructionProfiler &prof,
                                std::size_t limit = 20);

/**
 * Table of instructions that are candidates for specialization: at
 * least `min_execs` executions and Inv-Top >= `min_inv`, ordered by
 * executions. The paper calls these semi-invariant instructions.
 */
vp::TextTable semiInvariantReport(const InstructionProfiler &prof,
                                  double min_inv = 0.5,
                                  std::uint64_t min_execs = 100,
                                  std::size_t limit = 20);

/**
 * instructionReport over a snapshot instead of a live profiler —
 * same columns, same ordering. This is how parallel-profiling shard
 * results (which only retain snapshots) are rendered, so sequential
 * and sharded runs print byte-identical tables.
 */
vp::TextTable snapshotInstructionReport(const ProfileSnapshot &snap,
                                        const vpsim::Program &prog,
                                        std::size_t limit = 20);

/** semiInvariantReport over a snapshot (key = pc). */
vp::TextTable snapshotSemiInvariantReport(const ProfileSnapshot &snap,
                                          const vpsim::Program &prog,
                                          double min_inv = 0.5,
                                          std::uint64_t min_execs = 100,
                                          std::size_t limit = 20);

/** Table of the top memory locations by profiled writes. */
vp::TextTable memoryReport(const MemoryProfiler &prof,
                           std::size_t limit = 20);

/** Table of procedures by call count with per-argument invariance. */
vp::TextTable parameterReport(const ParameterProfiler &prof,
                              std::size_t limit = 20);

/**
 * Deterministic JSON rendering of a double for query replies: "%.9g",
 * non-finite values rendered as 0. Identical aggregates render to
 * identical bytes, which is what the HTTP query plane's paging and
 * the differential checks rely on.
 */
void writeJsonDouble(std::ostream &os, double v);

/**
 * Render one snapshot entity as a JSON object — the full TNV view a
 * downstream consumer gets from `GET /entity/{id}`: every metric plus
 * the complete (value, count) list, descending count. One line, no
 * trailing newline, stable field order.
 */
void writeEntityJson(std::ostream &os, std::uint64_t key,
                     const EntitySummary &summary);

} // namespace core

#endif // VP_CORE_REPORT_HPP
