#include "core/register_profiler.hpp"

#include "support/logging.hpp"

namespace core
{

namespace
{

std::array<ValueProfile, vpsim::numRegs>
makeProfiles(const ProfileConfig &cfg)
{
    std::array<ValueProfile, vpsim::numRegs> out;
    out.fill(ValueProfile(cfg));
    return out;
}

} // namespace

RegisterProfiler::RegisterProfiler(const ProfileConfig &config)
    : profiles(makeProfiles(config))
{
}

void
RegisterProfiler::instrument(instr::InstrumentManager &mgr)
{
    mgr.instrumentInsts(mgr.image().regWritingInsts(), this);
}

void
RegisterProfiler::onInstValue(std::uint32_t pc, const vpsim::Inst &inst,
                              std::uint64_t value)
{
    (void)pc;
    profiles[inst.rd].record(value);
    ++writes;
}

const ValueProfile &
RegisterProfiler::profileFor(unsigned reg) const
{
    vp_assert(reg < vpsim::numRegs, "register %u out of range", reg);
    return profiles[reg];
}

double
RegisterProfiler::weightedMetric(
    double (ValueProfile::*metric)() const) const
{
    double num = 0.0, den = 0.0;
    for (const auto &prof : profiles) {
        const auto w = static_cast<double>(prof.executions());
        num += (prof.*metric)() * w;
        den += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace core
