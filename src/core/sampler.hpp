/**
 * @file
 * Convergent ("intelligent") sampling — the paper's second
 * contribution (thesis chapter on efficient value profiling).
 *
 * Full value profiling slows programs down by an order of magnitude,
 * so the profiler samples: each instruction is profiled in periodic
 * bursts, and once its estimated invariance stops changing between
 * bursts the instruction is declared *converged* and its sampling
 * interval backs off geometrically. Periodic wake-up bursts still
 * occur so a phase change (invariance shift) re-triggers full-rate
 * sampling.
 *
 * SamplerState is a per-entity state machine driven by one call per
 * dynamic execution; it decides whether that execution is profiled.
 */

#ifndef VP_CORE_SAMPLER_HPP
#define VP_CORE_SAMPLER_HPP

#include <cstdint>

namespace core
{

/** How a profiler decides which executions to record. */
enum class ProfileMode
{
    Full,     ///< profile every execution
    Sampled,  ///< convergent sampling (the paper's scheme)
    Random,   ///< uniform random sampling (the CPI [1] question the
              ///< thesis raises: is random sampling good enough?)
};

/** Convergent-sampling parameters. */
struct SamplerConfig
{
    /** Executions profiled per burst. */
    std::uint64_t burstSize = 64;
    /** Executions skipped between bursts before convergence. */
    std::uint64_t initialSkip = 448;
    /**
     * A burst whose invariance estimate moved less than this (absolute)
     * counts toward convergence.
     */
    double convergenceDelta = 0.02;
    /** Consecutive stable bursts required to declare convergence. */
    unsigned convergeRounds = 3;
    /** Skip-interval multiplier applied after convergence. */
    double backoffFactor = 2.0;
    /** Upper bound on the skip interval (the wake-up period). */
    std::uint64_t maxSkip = 64 * 1024;
    /**
     * An invariance shift of at least this much at a wake-up burst
     * resets the state machine to full-rate sampling (phase change).
     */
    double retriggerDelta = 0.08;
};

/**
 * What a burst report meant for the state machine — the notification
 * hook online consumers (the adaptive specialization engine) key off.
 */
enum class BurstEvent
{
    None,         ///< burst absorbed; no state transition
    Converged,    ///< this burst completed convergence
    Retriggered,  ///< phase change detected; back to full-rate sampling
};

/** Per-entity sampling state machine. */
class SamplerState
{
  public:
    explicit SamplerState(const SamplerConfig &config = {});

    /**
     * Advance by one dynamic execution.
     * @return true if this execution should be profiled.
     */
    bool step();

    /**
     * True right after a step() that completed a burst; the caller
     * must then report the current invariance estimate through
     * noteBurstEnd() before the next step().
     */
    bool burstJustEnded() const { return burstEnded; }

    /**
     * Report the invariance estimate at the end of a burst.
     * @return the transition this burst caused, so callers that react
     *         to convergence or phase changes (src/adapt) need not
     *         diff converged() around the call.
     */
    BurstEvent noteBurstEnd(double inv_estimate);

    bool converged() const { return isConverged; }
    std::uint64_t totalExecutions() const { return total; }
    std::uint64_t profiledExecutions() const { return profiled; }

    /** Fraction of executions profiled so far (1 if none seen). */
    double
    fractionProfiled() const
    {
        return total ? static_cast<double>(profiled) /
                           static_cast<double>(total)
                     : 1.0;
    }

    /** Current skip interval (grows after convergence). */
    std::uint64_t currentSkip() const { return curSkip; }

  private:
    SamplerConfig cfg;
    bool inBurst = true;
    bool burstEnded = false;
    std::uint64_t phaseLeft;      ///< executions left in current phase
    std::uint64_t curSkip;
    std::uint64_t total = 0;
    std::uint64_t profiled = 0;
    double lastInv = -1.0;        ///< estimate at previous burst end
    unsigned stableRounds = 0;
    bool isConverged = false;
};

} // namespace core

#endif // VP_CORE_SAMPLER_HPP
