/**
 * @file
 * Architectural-register value profiler.
 *
 * Where the instruction profiler asks "what does this static
 * instruction produce", this asks "what does architectural register r
 * hold over time" — the register-file view behind Gabbay's register
 * value prediction (thesis ch. II context: "by predicting register
 * values one could achieve some of the benefit that register windows
 * offer"). Stack/global pointers are expected to be near-invariant,
 * argument registers semi-invariant, temporaries variant — a profile
 * that tells hardware which registers are worth predicting across
 * calls.
 */

#ifndef VP_CORE_REGISTER_PROFILER_HPP
#define VP_CORE_REGISTER_PROFILER_HPP

#include <array>
#include <cstdint>

#include "core/value_profile.hpp"
#include "instrument/manager.hpp"

namespace core
{

/** Value profiler keyed by destination register. */
class RegisterProfiler : public instr::Tool
{
  public:
    explicit RegisterProfiler(const ProfileConfig &config = {});

    /**
     * Route every register-writing instruction of the image through
     * this tool.
     */
    void instrument(instr::InstrumentManager &mgr);

    // Tool interface ---------------------------------------------------
    void onInstValue(std::uint32_t pc, const vpsim::Inst &inst,
                     std::uint64_t value) override;

    // Results ----------------------------------------------------------

    /** Profile of writes to architectural register r. */
    const ValueProfile &profileFor(unsigned reg) const;

    /** Total profiled register writes. */
    std::uint64_t totalWrites() const { return writes; }

    /** Write-weighted mean of a metric over all registers. */
    double weightedMetric(double (ValueProfile::*metric)() const) const;

  private:
    std::array<ValueProfile, vpsim::numRegs> profiles;
    std::uint64_t writes = 0;
};

} // namespace core

#endif // VP_CORE_REGISTER_PROFILER_HPP
