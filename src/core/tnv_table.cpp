#include "core/tnv_table.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"

namespace core
{

namespace
{
/** See TnvTable::setMergeCanaryForTest. */
bool mergeCanary = false;
} // namespace

void
TnvTable::setMergeCanaryForTest(bool enabled)
{
    mergeCanary = enabled;
}

bool
TnvTable::mergeCanaryForTest()
{
    return mergeCanary;
}

TnvTable::TnvTable(const TnvConfig &config) : cfg(config)
{
    vp_assert(cfg.capacity >= 1, "TNV capacity must be positive");
    vp_assert(cfg.clearInterval >= 1, "clear interval must be positive");
    entries.reserve(cfg.capacity);
}

void
TnvTable::record(std::uint64_t value)
{
    ++records;

    // Hit: bump the count.
    for (auto &e : entries) {
        if (e.value == value) {
            ++e.count;
            e.lastUse = records;
            goto maybe_clear;
        }
    }

    // Miss with a free slot: insert.
    if (entries.size() < cfg.capacity) {
        entries.push_back({value, 1, records});
        VP_STAT_INC(vp::stats::Cid::TnvInserts);
    } else {
        // Miss with a full table: replace the policy's victim.
        TnvEntry &victim = entries[victimIndex()];
        victim = {value, 1, records};
        VP_STAT_INC(vp::stats::Cid::TnvInserts);
        VP_STAT_INC(vp::stats::Cid::TnvEvictions);
    }

  maybe_clear:
    if (cfg.policy == TnvConfig::Policy::SteadyClear) {
        if (++sinceClear >= cfg.clearInterval) {
            sinceClear = 0;
            clearBottomHalf();
        }
    }
}

std::size_t
TnvTable::victimIndex() const
{
    vp_assert(!entries.empty(), "victim of an empty table");
    std::size_t best = 0;
    if (cfg.policy == TnvConfig::Policy::Lru) {
        for (std::size_t i = 1; i < entries.size(); ++i)
            if (entries[i].lastUse < entries[best].lastUse)
                best = i;
    } else {
        // LFU for both PureLfu and SteadyClear. Ties broken by age so
        // stale entries leave first.
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (entries[i].count < entries[best].count ||
                (entries[i].count == entries[best].count &&
                 entries[i].lastUse < entries[best].lastUse))
                best = i;
        }
    }
    return best;
}

std::vector<TnvEntry>
TnvTable::sortedByCount() const
{
    std::vector<TnvEntry> out = entries;
    std::sort(out.begin(), out.end(),
              [](const TnvEntry &a, const TnvEntry &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.lastUse < b.lastUse;
              });
    return out;
}

std::optional<TnvEntry>
TnvTable::top() const
{
    if (entries.empty())
        return std::nullopt;
    const TnvEntry *best = &entries[0];
    for (const auto &e : entries)
        if (e.count > best->count ||
            (e.count == best->count && e.lastUse < best->lastUse))
            best = &e;
    return *best;
}

std::uint64_t
TnvTable::coveredCount() const
{
    std::uint64_t sum = 0;
    for (const auto &e : entries)
        sum += e.count;
    return sum;
}

std::uint64_t
TnvTable::countFor(std::uint64_t value) const
{
    for (const auto &e : entries)
        if (e.value == value)
            return e.count;
    return 0;
}

void
TnvTable::clearBottomHalf()
{
    if (entries.size() <= 1)
        return;
    // Keep the ceil(size/2) highest-count entries; evict the rest.
    // Operating on the occupied size (not the capacity) matters for
    // partially-full tables: clearing must still evict stale cold
    // entries so newly-hot values can establish themselves, even when
    // the table never fills.
    auto sorted = sortedByCount();
    const std::size_t keep = (sorted.size() + 1) / 2;
    VP_STAT_INC(vp::stats::Cid::TnvClears);
    VP_STAT_ADD(vp::stats::Cid::TnvClearEvictions, sorted.size() - keep);
    sorted.resize(keep);
    entries = std::move(sorted);
}

void
TnvTable::merge(const TnvTable &other)
{
    // `other` is treated as the later shard, so its entries' recency
    // indices are rebased past this table's record count; a value
    // present in both shards is necessarily most recent in `other`.
    const std::uint64_t base = records;
    for (const auto &oe : other.entries) {
        bool matched = false;
        for (auto &e : entries) {
            if (e.value == oe.value) {
                if (mergeCanary)
                    e.count = std::max(e.count, oe.count);
                else
                    e.count += oe.count;
                e.lastUse = base + oe.lastUse;
                matched = true;
                break;
            }
        }
        if (!matched)
            entries.push_back({oe.value, oe.count, base + oe.lastUse});
    }
    records += other.records;
    if (cfg.policy == TnvConfig::Policy::SteadyClear)
        sinceClear = (sinceClear + other.sinceClear) % cfg.clearInterval;

    VP_STAT_INC(vp::stats::Cid::TnvMerges);

    // Capacity-respecting LFU re-selection over the union. The counts
    // carried by dropped entries are the merge's information loss
    // (DESIGN.md, "Shard-and-merge semantics"), so attribute them.
    if (entries.size() > cfg.capacity) {
        auto sorted = sortedByCount();
        std::uint64_t lost = 0;
        for (std::size_t i = cfg.capacity; i < sorted.size(); ++i)
            lost += sorted[i].count;
        VP_STAT_ADD(vp::stats::Cid::TnvMergeDroppedEntries,
                    sorted.size() - cfg.capacity);
        VP_STAT_ADD(vp::stats::Cid::TnvMergeDroppedCount, lost);
        sorted.resize(cfg.capacity);
        entries = std::move(sorted);
    }
}

void
TnvTable::reset()
{
    entries.clear();
    records = 0;
    sinceClear = 0;
}

} // namespace core
