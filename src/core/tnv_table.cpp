#include "core/tnv_table.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"

namespace core
{

namespace
{
/** See TnvTable::setMergeCanaryForTest. */
bool mergeCanary = false;

/** The table's one ordering: descending count, ties to older entries. */
bool
byCountThenAge(const TnvEntry &a, const TnvEntry &b)
{
    if (a.count != b.count)
        return a.count > b.count;
    return a.lastUse < b.lastUse;
}
} // namespace

void
TnvTable::setMergeCanaryForTest(bool enabled)
{
    mergeCanary = enabled;
}

bool
TnvTable::mergeCanaryForTest()
{
    return mergeCanary;
}

void
TnvTable::setRecordCanaryForTest(bool enabled)
{
    recordCanary = enabled;
}

bool
TnvTable::recordCanaryForTest()
{
    return recordCanary;
}

TnvTable::TnvTable(const TnvConfig &config) : cfg(config)
{
    vp_assert(cfg.capacity >= 1, "TNV capacity must be positive");
    vp_assert(cfg.clearInterval >= 1, "clear interval must be positive");
    // No reservation here: most profiled entities only ever see one
    // value and live out their lives in the inline slot. The vector is
    // reserved lazily by spill() when a second distinct value appears.
}

void
TnvTable::recordFirstInline(std::uint64_t value)
{
    inlineEntry = {value, 1, records};
    inlineActive = true;
    VP_STAT_INC(vp::stats::Cid::TnvInserts);
}

void
TnvTable::spill()
{
    vp_assert(inlineActive, "spill of a table with no inline entry");
    entries.reserve(cfg.capacity);
    entries.push_back(inlineEntry);
    inlineActive = false;
    hotIdx = 0;
}

bool
TnvTable::recordMiss(std::uint64_t value)
{
    // Hit on an entry other than the cached one: bump and re-cache.
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].value == value) {
            ++entries[i].count;
            entries[i].lastUse = records;
            hotIdx = i;
            return true;
        }
    }

    // Miss with a free slot: insert.
    if (entries.size() < cfg.capacity) {
        hotIdx = entries.size();
        entries.push_back({value, 1, records});
        VP_STAT_INC(vp::stats::Cid::TnvInserts);
    } else {
        // Miss with a full table: replace the policy's victim. The new
        // value becomes the cached entry — a fresh value is the likely
        // start of a run.
        hotIdx = victimIndex();
        entries[hotIdx] = {value, 1, records};
        VP_STAT_INC(vp::stats::Cid::TnvInserts);
        VP_STAT_INC(vp::stats::Cid::TnvEvictions);
    }
    return false;
}

std::size_t
TnvTable::victimIndex() const
{
    vp_assert(!entries.empty(), "victim of an empty table");
    std::size_t best = 0;
    if (cfg.policy == TnvConfig::Policy::Lru) {
        for (std::size_t i = 1; i < entries.size(); ++i)
            if (entries[i].lastUse < entries[best].lastUse)
                best = i;
    } else {
        // LFU for both PureLfu and SteadyClear. Ties broken by age so
        // stale entries leave first.
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (entries[i].count < entries[best].count ||
                (entries[i].count == entries[best].count &&
                 entries[i].lastUse < entries[best].lastUse))
                best = i;
        }
    }
    return best;
}

std::vector<TnvEntry>
TnvTable::sortedByCount() const
{
    const TnvEntryView view = raw();
    std::vector<TnvEntry> out(view.begin(), view.end());
    std::sort(out.begin(), out.end(), byCountThenAge);
    return out;
}

std::optional<TnvEntry>
TnvTable::top() const
{
    const TnvEntryView view = raw();
    if (view.empty())
        return std::nullopt;
    const TnvEntry *best = view.begin();
    for (const auto &e : view)
        if (e.count > best->count ||
            (e.count == best->count && e.lastUse < best->lastUse))
            best = &e;
    return *best;
}

std::uint64_t
TnvTable::coveredCount() const
{
    std::uint64_t sum = 0;
    for (const auto &e : raw())
        sum += e.count;
    return sum;
}

std::uint64_t
TnvTable::countFor(std::uint64_t value) const
{
    for (const auto &e : raw())
        if (e.value == value)
            return e.count;
    return 0;
}

void
TnvTable::clearBottomHalf()
{
    // The inline single-entry form (size() == 1) is covered by the
    // early return: clearing keeps ceil(1/2) == 1 entries.
    if (size() <= 1)
        return;
    // Keep the ceil(size/2) highest-count entries; evict the rest.
    // Operating on the occupied size (not the capacity) matters for
    // partially-full tables: clearing must still evict stale cold
    // entries so newly-hot values can establish themselves, even when
    // the table never fills.
    //
    // Sorted in place (lastUse values are unique, so the order is a
    // strict total order and sort instability can't matter) — this
    // runs every clearInterval records on the hot path and must not
    // allocate.
    std::sort(entries.begin(), entries.end(), byCountThenAge);
    const std::size_t keep = (entries.size() + 1) / 2;
    VP_STAT_INC(vp::stats::Cid::TnvClears);
    VP_STAT_ADD(vp::stats::Cid::TnvClearEvictions, entries.size() - keep);
    entries.resize(keep);
    hotIdx = 0;  // entries[0] is now the top entry
}

void
TnvTable::merge(const TnvTable &other)
{
    // `other` is treated as the later shard, so its entries' recency
    // indices are rebased past this table's record count; a value
    // present in both shards is necessarily most recent in `other`.
    const std::uint64_t base = records;
    const TnvEntryView otherView = other.raw();

    // Cold-form merges: keep (or adopt) the inline slot when the union
    // still has a single value, so merging millions of cold shard
    // tables allocates nothing.
    if (inlineActive) {
        if (otherView.size() == 1 &&
            otherView[0].value == inlineEntry.value) {
            if (mergeCanary)
                inlineEntry.count =
                    std::max(inlineEntry.count, otherView[0].count);
            else
                inlineEntry.count += otherView[0].count;
            inlineEntry.lastUse = base + otherView[0].lastUse;
            records += other.records;
            if (cfg.policy == TnvConfig::Policy::SteadyClear)
                sinceClear =
                    (sinceClear + other.sinceClear) % cfg.clearInterval;
            VP_STAT_INC(vp::stats::Cid::TnvMerges);
            return;
        }
        if (!otherView.empty())
            spill();
    } else if (entries.empty() && otherView.size() == 1) {
        inlineEntry = {otherView[0].value, otherView[0].count,
                       base + otherView[0].lastUse};
        inlineActive = true;
        records += other.records;
        if (cfg.policy == TnvConfig::Policy::SteadyClear)
            sinceClear =
                (sinceClear + other.sinceClear) % cfg.clearInterval;
        VP_STAT_INC(vp::stats::Cid::TnvMerges);
        return;
    }

    for (const auto &oe : otherView) {
        bool matched = false;
        for (auto &e : entries) {
            if (e.value == oe.value) {
                if (mergeCanary)
                    e.count = std::max(e.count, oe.count);
                else
                    e.count += oe.count;
                e.lastUse = base + oe.lastUse;
                matched = true;
                break;
            }
        }
        if (!matched)
            entries.push_back({oe.value, oe.count, base + oe.lastUse});
    }
    records += other.records;
    if (cfg.policy == TnvConfig::Policy::SteadyClear)
        sinceClear = (sinceClear + other.sinceClear) % cfg.clearInterval;

    VP_STAT_INC(vp::stats::Cid::TnvMerges);

    // Capacity-respecting LFU re-selection over the union. The counts
    // carried by dropped entries are the merge's information loss
    // (DESIGN.md, "Shard-and-merge semantics"), so attribute them.
    if (entries.size() > cfg.capacity) {
        auto sorted = sortedByCount();
        std::uint64_t lost = 0;
        for (std::size_t i = cfg.capacity; i < sorted.size(); ++i)
            lost += sorted[i].count;
        VP_STAT_ADD(vp::stats::Cid::TnvMergeDroppedEntries,
                    sorted.size() - cfg.capacity);
        VP_STAT_ADD(vp::stats::Cid::TnvMergeDroppedCount, lost);
        sorted.resize(cfg.capacity);
        entries = std::move(sorted);
    }
    hotIdx = 0;  // entry order may have changed; re-cache conservatively
}

void
TnvTable::reset()
{
    entries.clear();
    inlineActive = false;
    records = 0;
    sinceClear = 0;
    hotIdx = 0;
}

} // namespace core
