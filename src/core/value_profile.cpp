#include "core/value_profile.hpp"

namespace core
{

ValueProfile::ValueProfile(const ProfileConfig &config)
    : cfg(config), table(config.tnv), strides(config.strideTnv)
{
}

double
ValueProfile::invTop() const
{
    const std::uint64_t n = table.recordCount();
    if (n == 0)
        return 0.0;
    const auto best = table.top();
    return best ? static_cast<double>(best->count) /
                      static_cast<double>(n)
                : 0.0;
}

double
ValueProfile::invAll() const
{
    const std::uint64_t n = table.recordCount();
    if (n == 0)
        return 0.0;
    return static_cast<double>(table.coveredCount()) /
           static_cast<double>(n);
}

double
ValueProfile::lvp() const
{
    const std::uint64_t n = table.recordCount();
    if (n == 0)
        return 0.0;
    return static_cast<double>(lastHits) / static_cast<double>(n);
}

double
ValueProfile::zeroFraction() const
{
    const std::uint64_t n = table.recordCount();
    if (n == 0)
        return 0.0;
    return static_cast<double>(zeros) / static_cast<double>(n);
}

double
ValueProfile::strideInvTop() const
{
    const std::uint64_t n = strides.recordCount();
    if (n == 0)
        return 0.0;
    const auto best = strides.top();
    return best ? static_cast<double>(best->count) /
                      static_cast<double>(n)
                : 0.0;
}

std::int64_t
ValueProfile::topStride() const
{
    const auto best = strides.top();
    return best ? static_cast<std::int64_t>(best->value) : 0;
}

void
ValueProfile::merge(const ValueProfile &other)
{
    table.merge(other.table);
    strides.merge(other.strides);
    zeros += other.zeros;
    lastHits += other.lastHits;
    // The boundary between the shards is invisible to both: whether
    // other's first value matched this shard's last value was never
    // checked, so that potential LVP hit (and the boundary stride) is
    // conservatively dropped.
    if (other.hasLast) {
        lastValue = other.lastValue;
        hasLast = true;
    }
    if (cfg.trackDistinct) {
        other.seen.forEach([&](std::uint64_t v) {
            if (saturated)
                return;
            if (seen.insert(v)) {
                ++distinctCount;
                if (seen.size() >= cfg.maxDistinct)
                    saturated = true;
            }
        });
        // If the other shard overflowed its set, the union is itself
        // only a lower bound.
        saturated = saturated || other.saturated;
    }
}

void
ValueProfile::reset()
{
    table.reset();
    strides.reset();
    zeros = 0;
    lastHits = 0;
    hasLast = false;
    seen.clear();
    distinctCount = 0;
    saturated = false;
}

} // namespace core
