#include "core/memo_profiler.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace core
{

namespace
{

/** FNV-1a over the argument tuple. */
std::uint64_t
tupleHash(const std::uint64_t *args, unsigned n)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (args[i] >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

} // namespace

MemoProfiler::MemoProfiler(const MemoProfilerConfig &config)
    : cfg(config)
{
    vp_assert(cfg.cacheIndexBits >= 1 && cfg.cacheIndexBits <= 30,
              "cacheIndexBits out of range");
}

void
MemoProfiler::instrument(instr::InstrumentManager &mgr)
{
    mgr.instrumentCalls(this);
}

void
MemoProfiler::onProcCall(const vpsim::Procedure &proc,
                         const std::uint64_t *args,
                         std::uint32_t caller_pc)
{
    (void)caller_pc;
    ProcState &state = states[proc.name];
    if (state.stats.proc == nullptr) {
        state.stats.proc = &proc;
        state.cacheTags.assign(std::size_t(1) << cfg.cacheIndexBits, 0);
        state.cacheValid.assign(std::size_t(1) << cfg.cacheIndexBits,
                                false);
    }
    ++state.stats.calls;

    const std::uint64_t h = tupleHash(args, proc.numArgs);

    // Unbounded history.
    if (!state.stats.distinctSaturated) {
        if (state.seen.insert(h).second) {
            ++state.stats.distinctTuples;
            if (state.seen.size() >= cfg.maxDistinctTuples)
                state.stats.distinctSaturated = true;
        } else {
            ++state.stats.unboundedHits;
        }
    }

    // Direct-mapped cache of tuple tags.
    const std::size_t idx = static_cast<std::size_t>(
        h >> (64 - cfg.cacheIndexBits));
    if (state.cacheValid[idx] && state.cacheTags[idx] == h) {
        ++state.stats.cacheHits;
    } else {
        state.cacheTags[idx] = h;
        state.cacheValid[idx] = true;
    }
}

const MemoProfiler::ProcStats *
MemoProfiler::statsFor(const std::string &proc_name) const
{
    auto it = states.find(proc_name);
    return it == states.end() ? nullptr : &it->second.stats;
}

std::vector<const MemoProfiler::ProcStats *>
MemoProfiler::byCallCount() const
{
    std::vector<const ProcStats *> out;
    out.reserve(states.size());
    for (const auto &[name, state] : states)
        out.push_back(&state.stats);
    std::sort(out.begin(), out.end(),
              [](const ProcStats *a, const ProcStats *b) {
                  if (a->calls != b->calls)
                      return a->calls > b->calls;
                  return a->proc->name < b->proc->name;
              });
    return out;
}

} // namespace core
