/**
 * @file
 * The compressed (v2) profile entity-block codec.
 *
 * One encoding serves both persistence surfaces: the body of a
 * `valueprof-snapshot v2` file and the payload of a version-2 wire
 * delta/snapshot-reply are the same *entity block*, so a snapshot
 * streamed through vpd and one saved locally are byte-identical.
 *
 * Entity block layout (all integers LEB128 varints unless noted):
 *
 *   entityCount
 *   droppedStores              (see ProfileSnapshot::droppedStores)
 *   droppedLoads
 *   records...                 until entityCount entities are decoded
 *
 * Three record kinds (1 leading kind byte each):
 *
 *   Full (1): flags u8, keyDelta, totalExecutions,
 *     [profiledExecutions unless flags&ProfiledEqTotal],
 *     [f64 bits for each metric NOT marked canonical/zero in flags],
 *     ntop, [distinct unless flags&DistinctEqNtop],
 *     ntop * (value varint, count) where the first count is raw and
 *     the rest are zigzag deltas from the previous count.
 *
 *   Constant (2): keyDelta, totalExecutions, total-profiled, value.
 *     An entity whose profile is a known constant — one table entry
 *     covering every profiled execution, all four metrics bit-equal
 *     to their canonical constant forms — needs only its count and
 *     value; the decoder reconstructs the rest exactly.
 *
 *   ConstantRun (3): keyDelta (to the first key), keyStride, runLen,
 *     shared totalExecutions, shared total-profiled, runLen values.
 *     A run of >= 2 consecutive Constant entities whose keys advance
 *     by a fixed stride and whose counts agree (adjacent memory
 *     locations written the same number of times — the overwhelmingly
 *     common shape of a memory profile) collapses to one header plus
 *     one value per entity.
 *
 * Keys are delta-encoded in ascending order (the snapshot map order):
 * the first record carries an absolute key, every later one a delta
 * >= 1 from the previous entity's key. Doubles whose bit patterns
 * equal what the canonical formulas recompute are elided and
 * recomputed on decode with the *same expressions*, so an
 * encode/decode round trip is bit-exact — the property the vpcheck
 * fixed-point and serve byte-identity checkers rest on. The greedy
 * run grouping is deterministic in entity content alone, so
 * decode -> re-encode reproduces the original bytes.
 */

#ifndef VP_CORE_PROFILE_CODEC_HPP
#define VP_CORE_PROFILE_CODEC_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace core
{

class ProfileSnapshot;

namespace codec
{

/** Record kinds (wire byte values are part of the format). */
enum class RecordKind : std::uint8_t
{
    Full = 1,
    Constant = 2,
    ConstantRun = 3,
};

/** Full-record flag bits (bits 6-7 reserved, must be zero). */
enum FullFlags : std::uint8_t
{
    kProfiledEqTotal = 0x01,  ///< profiledExecutions == totalExecutions
    kDistinctEqNtop = 0x02,   ///< distinct == topValues.size()
    kInvTopCanonical = 0x04,  ///< invTop == top count / profiled
    kInvAllCanonical = 0x08,  ///< invAll == covered / profiled
    kLvpZero = 0x10,          ///< lvp bits == 0.0 bits
    kZeroFractionZero = 0x20, ///< zeroFraction bits == 0.0 bits
};

/** Append `v` as a LEB128 varint (1-10 bytes). */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t v);

/**
 * Read a LEB128 varint from [*pos, len). @return false on truncation
 * or a non-minimal/overlong encoding (> 10 bytes or overflow).
 */
bool getVarint(const std::uint8_t *data, std::size_t len,
               std::size_t *pos, std::uint64_t &out);

/** Zigzag-map a signed delta into varint-friendly form and back. */
std::uint64_t zigzag(std::int64_t v);
std::int64_t unzigzag(std::uint64_t v);

/** Serialize `snap` as one entity block, appended to `out`. */
void encodeEntityBlock(const ProfileSnapshot &snap,
                       std::vector<std::uint8_t> &out);

/**
 * Decode one entity block from [*pos, len), advancing *pos past it.
 *
 * `inflatedCap` bounds the block's *decompressed* size, measured in
 * v1 fixed-width wire bytes (the decompression-bomb guard): decoding
 * aborts as Corrupt the moment the reconstructed snapshot would have
 * exceeded that many bytes in the uncompressed encoding. Pass
 * UINT64_MAX for no cap (trusted local files).
 *
 * `out` may be null: the block is then only validated (structure,
 * bounds, inflation cap) without building a snapshot — tryDecode uses
 * this to condemn bomb frames before any allocation.
 *
 * `strictDistinct` additionally rejects a Full record whose ntop
 * exceeds its declared distinct count — true for snapshot files
 * (where summaries always satisfy it), false for wire payloads
 * (deltas from partial shards are not required to track distinct).
 *
 * @return false with a diagnosis in `error` (containing "truncated"
 *         for truncation) on malformed input.
 */
bool decodeEntityBlock(const std::uint8_t *data, std::size_t len,
                       std::size_t *pos, std::uint64_t inflatedCap,
                       bool strictDistinct, ProfileSnapshot *out,
                       std::string &error);

namespace testing
{
/**
 * TEST HOOK — mutation canary for the compressed encoder. When
 * enabled, the encoder off-by-ones one count per record (the top
 * count of a Full record, the total of a Constant/ConstantRun) —
 * still perfectly decodable, just wrong, exactly the kind of bug a
 * botched record-kind classification would introduce. vpcheck
 * --canary=compress asserts the fixed-point and byte-identity
 * checkers catch it. Global, not thread-safe; only flip it from
 * single-threaded test setup code.
 */
void setCompressCanaryForTest(bool enabled);
bool compressCanaryForTest();
} // namespace testing

} // namespace codec
} // namespace core

#endif // VP_CORE_PROFILE_CODEC_HPP
