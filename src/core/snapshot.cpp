#include "core/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>

#include "core/profile_codec.hpp"
#include "support/crc32.hpp"
#include "support/file.hpp"
#include "support/logging.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/stats_registry.hpp"

namespace core
{

EntitySummary
ProfileSnapshot::summarize(const ValueProfile &prof,
                           std::uint64_t total_executions)
{
    EntitySummary s;
    s.totalExecutions = total_executions;
    s.profiledExecutions = prof.executions();
    s.invTop = prof.invTop();
    s.invAll = prof.invAll();
    s.lvp = prof.lvp();
    s.zeroFraction = prof.zeroFraction();
    s.distinct = prof.distinct();
    for (const auto &e : prof.tnv().sortedByCount())
        s.topValues.emplace_back(e.value, e.count);
    return s;
}

void
EntitySummary::merge(const EntitySummary &other)
{
    const double wa = static_cast<double>(profiledExecutions);
    const double wb = static_cast<double>(other.profiledExecutions);

    totalExecutions += other.totalExecutions;
    profiledExecutions += other.profiledExecutions;
    distinct += other.distinct;

    // Sum top-value counts over the union, then keep the largest lists'
    // worth of values by merged count (ties: smaller value first, for
    // deterministic output regardless of merge order).
    std::map<std::uint64_t, std::uint64_t> counts;
    for (const auto &[v, c] : topValues)
        counts[v] += c;
    for (const auto &[v, c] : other.topValues)
        counts[v] += c;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> merged(
        counts.begin(), counts.end());
    std::sort(merged.begin(), merged.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    const std::size_t keep =
        std::max(topValues.size(), other.topValues.size());
    if (merged.size() > keep)
        merged.resize(keep);
    topValues = std::move(merged);

    std::uint64_t covered = 0;
    for (const auto &[v, c] : topValues)
        covered += c;
    const double n = static_cast<double>(profiledExecutions);
    invTop = n > 0.0 && !topValues.empty()
                 ? static_cast<double>(topValues.front().second) / n
                 : 0.0;
    invAll = n > 0.0 ? static_cast<double>(covered) / n : 0.0;
    lvp = n > 0.0 ? (lvp * wa + other.lvp * wb) / n : 0.0;
    zeroFraction =
        n > 0.0 ? (zeroFraction * wa + other.zeroFraction * wb) / n : 0.0;
}

void
ProfileSnapshot::merge(const ProfileSnapshot &other)
{
    VP_STAT_TIMER(merge_timer, "core.snapshot.merge_us");
    droppedStores += other.droppedStores;
    droppedLoads += other.droppedLoads;
    for (const auto &[key, summary] : other.entities) {
        auto it = entities.find(key);
        if (it == entities.end())
            entities[key] = summary;
        else
            it->second.merge(summary);
    }
}

ProfileSnapshot
ProfileSnapshot::fromInstructionProfiler(const InstructionProfiler &prof)
{
    ProfileSnapshot snap;
    for (const auto &rec : prof.records()) {
        snap.entities[rec.pc] =
            summarize(rec.profile, rec.totalExecutions);
        // Final table occupancy per entity — how full the TNV tables
        // ran, the companion to the eviction/clear counters.
        VP_STAT_OBSERVE("core.tnv.occupancy",
                        static_cast<double>(rec.profile.tnv().size()));
    }
    return snap;
}

ProfileSnapshot
ProfileSnapshot::fromMemoryProfiler(const MemoryProfiler &prof)
{
    ProfileSnapshot snap;
    snap.droppedStores = prof.droppedStores();
    snap.droppedLoads = prof.droppedLoads();
    for (const auto *loc :
         prof.topLocationsByWrites(prof.numLocations())) {
        snap.entities[loc->address] =
            summarize(loc->writes, loc->totalWrites);
    }
    return snap;
}

double
ProfileSnapshot::fractionProfiled() const
{
    std::uint64_t total = 0, profiled = 0;
    for (const auto &[key, s] : entities) {
        total += s.totalExecutions;
        profiled += s.profiledExecutions;
    }
    if (total == 0)
        return 1.0;
    return static_cast<double>(profiled) / static_cast<double>(total);
}

ProfileSnapshot
ProfileSnapshot::fromParameterProfiler(const ParameterProfiler &prof)
{
    auto name_hash = [](const std::string &s) {
        std::uint64_t h = 1469598103934665603ull;
        for (char ch : s) {
            h ^= static_cast<std::uint8_t>(ch);
            h *= 1099511628211ull;
        }
        return h;
    };
    ProfileSnapshot snap;
    for (const auto *rec : prof.byCallCount()) {
        const std::uint64_t base =
            name_hash(rec->proc->name) * vpsim::maxArgRegs;
        for (std::size_t i = 0; i < rec->args.size(); ++i)
            snap.entities[base + i] =
                summarize(rec->args[i], rec->calls);
    }
    return snap;
}

void
ProfileSnapshot::save(std::ostream &os, int version) const
{
    vp_assert(version >= kMinFormatVersion && version <= kFormatVersion,
              "unsupported snapshot format version %d", version);
    if (version == 1) {
        // Full round-trip precision for the stored metrics.
        os.precision(17);
        os << "valueprof-snapshot v1\n";
        os << entities.size() << "\n";
        for (const auto &[key, s] : entities) {
            os << key << ' ' << s.totalExecutions << ' '
               << s.profiledExecutions << ' ' << s.invTop << ' '
               << s.invAll << ' ' << s.lvp << ' ' << s.zeroFraction
               << ' ' << s.distinct << ' ' << s.topValues.size();
            for (const auto &[v, c] : s.topValues)
                os << ' ' << v << ' ' << c;
            os << '\n';
        }
        return;
    }
    // v2: compressed binary entity block with a CRC-32 footer, so a
    // torn or bit-flipped file is rejected rather than misread.
    os << "valueprof-snapshot v2\n";
    std::vector<std::uint8_t> block;
    codec::encodeEntityBlock(*this, block);
    const std::uint32_t crc = vp::crc32(block.data(), block.size());
    os.write(reinterpret_cast<const char *>(block.data()),
             static_cast<std::streamsize>(block.size()));
    for (int i = 0; i < 4; ++i)
        os.put(static_cast<char>((crc >> (8 * i)) & 0xFF));
}

ProfileSnapshot
ProfileSnapshot::load(std::istream &is)
{
    ProfileSnapshot snap;
    std::string error;
    if (!tryLoad(is, snap, error))
        vp_fatal("%s", error.c_str());
    return snap;
}

bool
ProfileSnapshot::tryLoad(std::istream &is, ProfileSnapshot &out,
                         std::string &error)
{
    out.entities.clear();
    out.droppedStores = 0;
    out.droppedLoads = 0;
    error.clear();

    std::string header;
    std::getline(is, header);
    if (header == "valueprof-snapshot v2") {
        // The rest of the stream is binary: one entity block plus a
        // 4-byte little-endian CRC-32 footer over it.
        std::string blob((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        if (blob.size() < 4) {
            error = "truncated snapshot: missing CRC footer";
            return false;
        }
        const auto *bytes =
            reinterpret_cast<const std::uint8_t *>(blob.data());
        const std::size_t bodyLen = blob.size() - 4;
        std::uint32_t want = 0;
        for (int i = 3; i >= 0; --i)
            want = (want << 8) | bytes[bodyLen + i];
        if (vp::crc32(bytes, bodyLen) != want) {
            error = "snapshot CRC mismatch: file truncated or corrupt";
            return false;
        }
        std::size_t pos = 0;
        ProfileSnapshot snap;
        if (!codec::decodeEntityBlock(
                bytes, bodyLen, &pos,
                std::numeric_limits<std::uint64_t>::max(),
                /*strictDistinct=*/true, &snap, error))
            return false;
        if (pos != bodyLen) {
            error = vp::format("%zu trailing bytes after the entity "
                               "block", bodyLen - pos);
            return false;
        }
        out = std::move(snap);
        return true;
    }
    if (header != "valueprof-snapshot v1") {
        // A proper prefix of a valid header line means the file was
        // cut mid-header, not written by something else entirely.
        if (!header.empty() &&
            (std::string("valueprof-snapshot v1").rfind(header, 0) == 0 ||
             std::string("valueprof-snapshot v2").rfind(header, 0) == 0))
            error = "truncated snapshot: incomplete header";
        else
            error =
                vp::format("bad snapshot header '%s'", header.c_str());
        return false;
    }
    std::size_t count = 0;
    if (!(is >> count)) {
        error = "truncated snapshot: missing entity count";
        return false;
    }
    ProfileSnapshot snap;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t key = 0;
        EntitySummary s;
        std::size_t ntop = 0;
        if (!(is >> key >> s.totalExecutions >> s.profiledExecutions >>
              s.invTop >> s.invAll >> s.lvp >> s.zeroFraction >>
              s.distinct >> ntop)) {
            error = vp::format("truncated snapshot at entity %zu of "
                               "%zu", i, count);
            return false;
        }
        // A corrupt ntop field could demand gigabytes; the saved list
        // is at most one TNV table (or merged union) long, so anything
        // huge is garbage, not data.
        constexpr std::size_t maxTopValues = 1u << 20;
        if (ntop > maxTopValues) {
            error = vp::format("implausible top-value count %zu at "
                               "entity %zu", ntop, i);
            return false;
        }
        // The top-value list is a subset of the values seen, so a
        // record claiming more top values than distinct values is
        // corrupt, not data.
        if (ntop > s.distinct) {
            error = vp::format("top-value count %zu exceeds distinct "
                               "count %llu at entity %zu", ntop,
                               static_cast<unsigned long long>(
                                   s.distinct), i);
            return false;
        }
        s.topValues.reserve(ntop);
        for (std::size_t j = 0; j < ntop; ++j) {
            std::uint64_t v = 0, c = 0;
            if (!(is >> v >> c)) {
                error = vp::format("truncated snapshot values at "
                                   "entity %zu of %zu", i, count);
                return false;
            }
            s.topValues.emplace_back(v, c);
        }
        if (snap.entities.count(key)) {
            error = vp::format("duplicate entity key %llu",
                               static_cast<unsigned long long>(key));
            return false;
        }
        snap.entities[key] = std::move(s);
    }
    // The declared count is the whole snapshot: a tail after it means
    // either a corrupted count or concatenated garbage — reject rather
    // than silently ignore it.
    is >> std::ws;
    if (!is.eof() && is.peek() != std::char_traits<char>::eof()) {
        error = "trailing garbage after the declared entity count";
        return false;
    }
    out = std::move(snap);
    return true;
}

namespace testing
{
std::size_t saveAbortAfterBytes = 0;
} // namespace testing

bool
ProfileSnapshot::saveToFile(const std::string &path,
                            std::string &error) const
{
    std::ostringstream body;
    save(body);
    // Forward the snapshot-specific crash hook to the shared atomic
    // writer's hook for the duration of this write only.
    const std::size_t prev = vp::testing::atomicWriteAbortAfterBytes;
    if (testing::saveAbortAfterBytes != 0)
        vp::testing::atomicWriteAbortAfterBytes =
            testing::saveAbortAfterBytes;
    const bool ok = vp::atomicWriteFile(path, body.str(), error);
    vp::testing::atomicWriteAbortAfterBytes = prev;
    return ok;
}

bool
ProfileSnapshot::tryLoadFile(const std::string &path,
                             ProfileSnapshot &out, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = vp::format("cannot open snapshot '%s'", path.c_str());
        return false;
    }
    return tryLoad(in, out, error);
}

SnapshotComparison
compareSnapshots(const ProfileSnapshot &a, const ProfileSnapshot &b)
{
    SnapshotComparison cmp;
    std::vector<double> inv_a, inv_b;
    double delta_num = 0.0, transfer_num = 0.0, weight_sum = 0.0;
    double inv_transfer_num = 0.0, inv_weight_sum = 0.0;

    for (const auto &[key, sa] : a.entities) {
        auto it = b.entities.find(key);
        if (it == b.entities.end())
            continue;
        const EntitySummary &sb = it->second;
        ++cmp.commonEntities;
        inv_a.push_back(sa.invTop);
        inv_b.push_back(sb.invTop);
        const auto w = static_cast<double>(sa.totalExecutions);
        weight_sum += w;
        delta_num += w * std::abs(sa.invTop - sb.invTop);
        const bool transfers =
            !sa.topValues.empty() && sb.hasTopValue(sa.topValue());
        if (transfers)
            transfer_num += w;
        if (sa.invTop >= 0.5) {
            ++cmp.invariantEntities;
            inv_weight_sum += w;
            if (transfers)
                inv_transfer_num += w;
        }
    }

    cmp.invTopCorrelation = vp::pearsonCorrelation(inv_a, inv_b);
    if (weight_sum > 0.0) {
        cmp.meanAbsInvTopDelta = delta_num / weight_sum;
        cmp.topValueTransfer = transfer_num / weight_sum;
    }
    if (inv_weight_sum > 0.0)
        cmp.topValueTransferInvariant = inv_transfer_num / inv_weight_sum;
    return cmp;
}

} // namespace core
