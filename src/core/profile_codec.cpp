#include "core/profile_codec.hpp"

#include <cstring>

#include "core/snapshot.hpp"
#include "support/strings.hpp"

namespace core
{
namespace codec
{

namespace
{

/** See testing::setCompressCanaryForTest. */
bool compressCanary = false;

/** v1 fixed-width wire cost of one entity record (the inflation unit
 *  of the decompression-bomb guard): key + total + profiled +
 *  distinct + four f64 metrics + ntop u32. */
constexpr std::uint64_t kInflatedEntityBytes = 68;
/** ...plus per top-value pair. */
constexpr std::uint64_t kInflatedPairBytes = 16;

bool
bitsEqual(double a, double b)
{
    std::uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof(ba));
    std::memcpy(&bb, &b, sizeof(bb));
    return ba == bb;
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

bool
getF64(const std::uint8_t *data, std::size_t len, std::size_t *pos,
       double &out)
{
    if (len - *pos < 8)
        return false;
    std::uint64_t bits = 0;
    const std::uint8_t *p = data + *pos;
    for (int i = 7; i >= 0; --i)
        bits = (bits << 8) | p[i];
    *pos += 8;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
}

/**
 * The canonical metric formulas, shared by the encoder's elision test
 * and the decoder's reconstruction. These are textually the same
 * expressions ValueProfile and EntitySummary::merge use, so a metric
 * that was *computed* (rather than, say, averaged across shards) is
 * always bit-equal to its canonical form and costs zero bytes.
 */
double
canonicalInvTop(const EntitySummary &s)
{
    const double n = static_cast<double>(s.profiledExecutions);
    return n > 0.0 && !s.topValues.empty()
               ? static_cast<double>(s.topValues.front().second) / n
               : 0.0;
}

double
canonicalInvAll(const EntitySummary &s)
{
    std::uint64_t covered = 0;
    for (const auto &[v, c] : s.topValues)
        covered += c;
    const double n = static_cast<double>(s.profiledExecutions);
    return n > 0.0 ? static_cast<double>(covered) / n : 0.0;
}

/**
 * True if `s` is a *known constant*: one value covering every
 * profiled execution, with every metric bit-equal to the canonical
 * constant form. Such an entity is fully determined by
 * (key, total, profiled, value) — the Constant/ConstantRun kinds.
 */
bool
isConstant(const EntitySummary &s)
{
    if (s.topValues.size() != 1 || s.distinct != 1)
        return false;
    const std::uint64_t n = s.profiledExecutions;
    if (n == 0 || s.topValues[0].second != n || s.totalExecutions < n)
        return false;
    if (!bitsEqual(s.invTop, 1.0) || !bitsEqual(s.invAll, 1.0))
        return false;
    // A constant stream misses exactly its first last-value prediction.
    if (!bitsEqual(s.lvp, static_cast<double>(n - 1) /
                              static_cast<double>(n)))
        return false;
    const double zf = s.topValues[0].first == 0 ? 1.0 : 0.0;
    return bitsEqual(s.zeroFraction, zf);
}

/** Reconstruct a constant entity — the exact inverse of isConstant. */
EntitySummary
makeConstant(std::uint64_t total, std::uint64_t profiled,
             std::uint64_t value)
{
    EntitySummary s;
    s.totalExecutions = total;
    s.profiledExecutions = profiled;
    s.distinct = 1;
    s.topValues.emplace_back(value, profiled);
    s.invTop = 1.0;
    s.invAll = 1.0;
    s.lvp = static_cast<double>(profiled - 1) /
            static_cast<double>(profiled);
    s.zeroFraction = value == 0 ? 1.0 : 0.0;
    return s;
}

void
encodeFull(std::vector<std::uint8_t> &out, std::uint64_t keyDelta,
           const EntitySummary &s)
{
    std::uint8_t flags = 0;
    if (s.profiledExecutions == s.totalExecutions)
        flags |= kProfiledEqTotal;
    if (s.distinct == s.topValues.size())
        flags |= kDistinctEqNtop;
    if (bitsEqual(s.invTop, canonicalInvTop(s)))
        flags |= kInvTopCanonical;
    if (bitsEqual(s.invAll, canonicalInvAll(s)))
        flags |= kInvAllCanonical;
    if (bitsEqual(s.lvp, 0.0))
        flags |= kLvpZero;
    if (bitsEqual(s.zeroFraction, 0.0))
        flags |= kZeroFractionZero;

    out.push_back(static_cast<std::uint8_t>(RecordKind::Full));
    out.push_back(flags);
    putVarint(out, keyDelta);
    putVarint(out, s.totalExecutions);
    if (!(flags & kProfiledEqTotal))
        putVarint(out, s.profiledExecutions);
    if (!(flags & kInvTopCanonical))
        putF64(out, s.invTop);
    if (!(flags & kInvAllCanonical))
        putF64(out, s.invAll);
    if (!(flags & kLvpZero))
        putF64(out, s.lvp);
    if (!(flags & kZeroFractionZero))
        putF64(out, s.zeroFraction);
    putVarint(out, s.topValues.size());
    if (!(flags & kDistinctEqNtop))
        putVarint(out, s.distinct);
    std::uint64_t prevCount = 0;
    bool first = true;
    for (const auto &[v, c] : s.topValues) {
        putVarint(out, v);
        std::uint64_t enc = c;
        if (first && compressCanary)
            ++enc; // see setCompressCanaryForTest
        if (first)
            putVarint(out, enc);
        else
            putVarint(out, zigzag(static_cast<std::int64_t>(
                               enc - prevCount)));
        prevCount = enc;
        first = false;
    }
}

} // namespace

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

bool
getVarint(const std::uint8_t *data, std::size_t len, std::size_t *pos,
          std::uint64_t &out)
{
    out = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (*pos >= len)
            return false;
        const std::uint8_t b = data[(*pos)++];
        if (shift == 63 && (b & ~std::uint8_t{1}))
            return false; // would overflow 64 bits
        out |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return true;
    }
    return false; // continuation bit set past 10 bytes
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
encodeEntityBlock(const ProfileSnapshot &snap,
                  std::vector<std::uint8_t> &out)
{
    putVarint(out, snap.entities.size());
    putVarint(out, snap.droppedStores);
    putVarint(out, snap.droppedLoads);

    // Flatten the map for lookahead; keys come out ascending.
    std::vector<std::pair<std::uint64_t, const EntitySummary *>> ents;
    ents.reserve(snap.entities.size());
    for (const auto &[key, s] : snap.entities)
        ents.emplace_back(key, &s);

    std::uint64_t prevKey = 0;
    bool first = true;
    auto keyDelta = [&](std::uint64_t key) {
        const std::uint64_t d = first ? key : key - prevKey;
        first = false;
        prevKey = key;
        return d;
    };

    for (std::size_t i = 0; i < ents.size();) {
        const auto &[key, s] = ents[i];
        if (!isConstant(*s)) {
            encodeFull(out, keyDelta(key), *s);
            ++i;
            continue;
        }
        // Greedy maximal run of constants with a fixed key stride and
        // shared counts. Deterministic in entity content alone, so a
        // decode -> re-encode reproduces the grouping exactly.
        std::size_t runEnd = i + 1;
        std::uint64_t stride = 0;
        if (runEnd < ents.size() && isConstant(*ents[runEnd].second) &&
            ents[runEnd].second->totalExecutions == s->totalExecutions &&
            ents[runEnd].second->profiledExecutions ==
                s->profiledExecutions) {
            stride = ents[runEnd].first - key;
            ++runEnd;
            while (runEnd < ents.size() &&
                   ents[runEnd].first ==
                       ents[runEnd - 1].first + stride &&
                   isConstant(*ents[runEnd].second) &&
                   ents[runEnd].second->totalExecutions ==
                       s->totalExecutions &&
                   ents[runEnd].second->profiledExecutions ==
                       s->profiledExecutions)
                ++runEnd;
        }
        const std::uint64_t canaryBump = compressCanary ? 1 : 0;
        if (runEnd - i >= 2) {
            out.push_back(
                static_cast<std::uint8_t>(RecordKind::ConstantRun));
            putVarint(out, keyDelta(key));
            putVarint(out, stride);
            putVarint(out, runEnd - i);
            putVarint(out, s->totalExecutions + canaryBump);
            putVarint(out, s->totalExecutions - s->profiledExecutions);
            for (std::size_t j = i; j < runEnd; ++j)
                putVarint(out, ents[j].second->topValues[0].first);
            prevKey = ents[runEnd - 1].first;
            i = runEnd;
        } else {
            out.push_back(
                static_cast<std::uint8_t>(RecordKind::Constant));
            putVarint(out, keyDelta(key));
            putVarint(out, s->totalExecutions + canaryBump);
            putVarint(out, s->totalExecutions - s->profiledExecutions);
            putVarint(out, s->topValues[0].first);
            ++i;
        }
    }
}

bool
decodeEntityBlock(const std::uint8_t *data, std::size_t len,
                  std::size_t *pos, std::uint64_t inflatedCap,
                  bool strictDistinct, ProfileSnapshot *out,
                  std::string &error)
{
    if (out) {
        out->entities.clear();
        out->droppedStores = 0;
        out->droppedLoads = 0;
    }
    std::uint64_t entityCount = 0, droppedStores = 0, droppedLoads = 0;
    if (!getVarint(data, len, pos, entityCount) ||
        !getVarint(data, len, pos, droppedStores) ||
        !getVarint(data, len, pos, droppedLoads)) {
        error = "truncated entity block header";
        return false;
    }
    // Every encoded entity consumes at least one input byte (a run of
    // n entities carries n value varints), so a count beyond the
    // remaining bytes is garbage — reject before any decode work.
    if (entityCount > len - *pos) {
        error = vp::format("implausible entity count %llu (truncated "
                           "or corrupt block)",
                           static_cast<unsigned long long>(entityCount));
        return false;
    }
    if (out) {
        out->droppedStores = droppedStores;
        out->droppedLoads = droppedLoads;
    }

    std::uint64_t inflated = 4; // the v1 entity-count field
    std::uint64_t prevKey = 0;
    bool first = true;
    std::uint64_t decoded = 0;

    auto nextKey = [&](std::uint64_t delta, std::uint64_t &key) {
        if (first) {
            key = delta;
            first = false;
        } else {
            if (delta == 0 || prevKey + delta < prevKey)
                return false; // keys must strictly ascend, no wrap
            key = prevKey + delta;
        }
        prevKey = key;
        return true;
    };
    auto chargeInflation = [&](std::uint64_t ntop) {
        inflated += kInflatedEntityBytes + kInflatedPairBytes * ntop;
        return inflated <= inflatedCap;
    };
    auto emit = [&](std::uint64_t key, EntitySummary &&s) {
        ++decoded;
        if (out)
            out->entities.emplace(key, std::move(s));
    };

    while (decoded < entityCount) {
        if (*pos >= len) {
            error = vp::format("truncated entity block: %llu of %llu "
                               "entities decoded",
                               static_cast<unsigned long long>(decoded),
                               static_cast<unsigned long long>(
                                   entityCount));
            return false;
        }
        const std::uint8_t kind = data[(*pos)++];
        std::uint64_t keyDelta = 0, key = 0;
        switch (static_cast<RecordKind>(kind)) {
          case RecordKind::Full: {
            if (*pos >= len) {
                error = "truncated full record";
                return false;
            }
            const std::uint8_t flags = data[(*pos)++];
            if (flags & 0xC0) {
                error = vp::format("reserved full-record flag bits "
                                   "0x%02x", flags & 0xC0);
                return false;
            }
            EntitySummary s;
            std::uint64_t ntop = 0;
            if (!getVarint(data, len, pos, keyDelta) ||
                !getVarint(data, len, pos, s.totalExecutions)) {
                error = "truncated full record";
                return false;
            }
            s.profiledExecutions = s.totalExecutions;
            if (!(flags & kProfiledEqTotal) &&
                !getVarint(data, len, pos, s.profiledExecutions)) {
                error = "truncated full record";
                return false;
            }
            if ((!(flags & kInvTopCanonical) &&
                 !getF64(data, len, pos, s.invTop)) ||
                (!(flags & kInvAllCanonical) &&
                 !getF64(data, len, pos, s.invAll)) ||
                (!(flags & kLvpZero) &&
                 !getF64(data, len, pos, s.lvp)) ||
                (!(flags & kZeroFractionZero) &&
                 !getF64(data, len, pos, s.zeroFraction))) {
                error = "truncated full record metrics";
                return false;
            }
            if (!getVarint(data, len, pos, ntop)) {
                error = "truncated full record";
                return false;
            }
            // Each pair costs >= 2 encoded bytes.
            if (ntop > (len - *pos) / 2) {
                error = vp::format("implausible top-value count %llu "
                                   "(truncated or corrupt record)",
                                   static_cast<unsigned long long>(
                                       ntop));
                return false;
            }
            s.distinct = ntop;
            if (!(flags & kDistinctEqNtop) &&
                !getVarint(data, len, pos, s.distinct)) {
                error = "truncated full record";
                return false;
            }
            if (strictDistinct && ntop > s.distinct) {
                error = vp::format(
                    "top-value count %llu exceeds distinct count %llu",
                    static_cast<unsigned long long>(ntop),
                    static_cast<unsigned long long>(s.distinct));
                return false;
            }
            if (!chargeInflation(ntop)) {
                error = "entity block inflates past the payload cap";
                return false;
            }
            s.topValues.reserve(ntop);
            std::uint64_t prevCount = 0;
            for (std::uint64_t j = 0; j < ntop; ++j) {
                std::uint64_t v = 0, d = 0;
                if (!getVarint(data, len, pos, v) ||
                    !getVarint(data, len, pos, d)) {
                    error = "truncated top values";
                    return false;
                }
                const std::uint64_t c =
                    j == 0 ? d
                           : prevCount + static_cast<std::uint64_t>(
                                             unzigzag(d));
                s.topValues.emplace_back(v, c);
                prevCount = c;
            }
            if (!nextKey(keyDelta, key)) {
                error = "non-ascending or overflowing entity key";
                return false;
            }
            // Elided metrics: recompute with the canonical formulas
            // (bit-equal to the originals by the encoder's contract).
            if (flags & kInvTopCanonical)
                s.invTop = canonicalInvTop(s);
            if (flags & kInvAllCanonical)
                s.invAll = canonicalInvAll(s);
            emit(key, std::move(s));
            break;
          }
          case RecordKind::Constant: {
            std::uint64_t total = 0, diff = 0, value = 0;
            if (!getVarint(data, len, pos, keyDelta) ||
                !getVarint(data, len, pos, total) ||
                !getVarint(data, len, pos, diff) ||
                !getVarint(data, len, pos, value)) {
                error = "truncated constant record";
                return false;
            }
            if (diff >= total) {
                error = "constant record with no profiled executions";
                return false;
            }
            if (!nextKey(keyDelta, key)) {
                error = "non-ascending or overflowing entity key";
                return false;
            }
            if (!chargeInflation(1)) {
                error = "entity block inflates past the payload cap";
                return false;
            }
            emit(key, makeConstant(total, total - diff, value));
            break;
          }
          case RecordKind::ConstantRun: {
            std::uint64_t stride = 0, runLen = 0, total = 0, diff = 0;
            if (!getVarint(data, len, pos, keyDelta) ||
                !getVarint(data, len, pos, stride) ||
                !getVarint(data, len, pos, runLen) ||
                !getVarint(data, len, pos, total) ||
                !getVarint(data, len, pos, diff)) {
                error = "truncated constant-run record";
                return false;
            }
            if (stride == 0 || runLen < 2) {
                error = "malformed constant-run record";
                return false;
            }
            if (diff >= total) {
                error = "constant-run record with no profiled "
                        "executions";
                return false;
            }
            if (runLen > entityCount - decoded) {
                error = vp::format("constant run of %llu entities "
                                   "overruns the declared count",
                                   static_cast<unsigned long long>(
                                       runLen));
                return false;
            }
            if (!nextKey(keyDelta, key)) {
                error = "non-ascending or overflowing entity key";
                return false;
            }
            for (std::uint64_t j = 0; j < runLen; ++j) {
                std::uint64_t value = 0;
                if (!getVarint(data, len, pos, value)) {
                    error = "truncated constant-run values";
                    return false;
                }
                if (j > 0) {
                    if (key + stride < key) {
                        error = "overflowing constant-run key";
                        return false;
                    }
                    key += stride;
                    prevKey = key;
                }
                if (!chargeInflation(1)) {
                    error = "entity block inflates past the payload "
                            "cap";
                    return false;
                }
                emit(key, makeConstant(total, total - diff, value));
            }
            break;
          }
          default:
            error = vp::format("unknown record kind %u",
                               static_cast<unsigned>(kind));
            return false;
        }
    }
    return true;
}

namespace testing
{

void
setCompressCanaryForTest(bool enabled)
{
    compressCanary = enabled;
}

bool
compressCanaryForTest()
{
    return compressCanary;
}

} // namespace testing

} // namespace codec
} // namespace core
