/**
 * @file
 * The Top-N-Value (TNV) table — the paper's central data structure.
 *
 * A TNV table accumulates the N most frequent result values of one
 * profiled entity (instruction, memory location, or parameter) as
 * (value, count) pairs. The paper's replacement policy is LFU with
 * periodic clearing: the table is conceptually split into a steady top
 * half and a replaceable bottom half; new values displace the
 * least-frequent bottom-half entry, and every `clearInterval` recorded
 * values the bottom half is evicted outright so newly-hot values can
 * establish themselves without perturbing the steady top half
 * (thesis section III.B).
 *
 * Pure LFU (no clearing) and LRU policies are provided for the design
 * ablation (experiment E13).
 */

#ifndef VP_CORE_TNV_TABLE_HPP
#define VP_CORE_TNV_TABLE_HPP

#include <cstdint>
#include <optional>
#include <vector>

namespace core
{

/** TNV table configuration. */
struct TnvConfig
{
    /** Replacement policy variants (paper default: SteadyClear). */
    enum class Policy
    {
        SteadyClear,  ///< LFU + periodic bottom-half clearing (paper)
        PureLfu,      ///< LFU, never cleared
        Lru,          ///< least-recently-seen replacement
    };

    unsigned capacity = 8;             ///< N, the paper uses 8
    std::uint64_t clearInterval = 2048; ///< records between clears
    Policy policy = Policy::SteadyClear;
};

/** One accumulated value. */
struct TnvEntry
{
    std::uint64_t value = 0;
    std::uint64_t count = 0;
    std::uint64_t lastUse = 0;  ///< record index of last hit (for LRU)
};

/**
 * Read-only view of a table's occupied entries. The entries may live
 * in the table's heap vector or — for a single-valued ("cold") table —
 * in its inline slot, so callers iterate a view instead of a
 * container reference. The view is invalidated by any mutation of the
 * table, exactly like the vector reference it replaces.
 */
class TnvEntryView
{
  public:
    TnvEntryView(const TnvEntry *first, std::size_t count)
        : firstEntry(first), entryCount(count)
    {}

    const TnvEntry *begin() const { return firstEntry; }
    const TnvEntry *end() const { return firstEntry + entryCount; }
    std::size_t size() const { return entryCount; }
    bool empty() const { return entryCount == 0; }
    const TnvEntry &operator[](std::size_t i) const
    {
        return firstEntry[i];
    }

  private:
    const TnvEntry *firstEntry;
    std::size_t entryCount;
};

/** The Top-N-Value table. */
class TnvTable
{
  public:
    explicit TnvTable(const TnvConfig &config = {});

    /**
     * Accumulate one observed value. Returns true on a *hit* — the
     * value was already in the table, i.e. it has certainly been
     * recorded before (callers use this to skip redundant
     * distinct-value work; see ValueProfile::record).
     *
     * Inlined fast path: the table caches the index of the entry that
     * was hit (or inserted) most recently, and a profiled value stream
     * is dominated by runs of a single value, so the overwhelming
     * majority of records resolve with one compare and no scan. Entry
     * values are unique, so a cache match is exactly the entry the
     * full scan would find — the fast path is behaviourally identical
     * to the scan, just cheaper.
     *
     * Cold-entity form: a freshly constructed table holds its first
     * value in an inline slot and allocates nothing. Most profiled
     * entities (memory locations above all) only ever produce one
     * value, so the common case costs zero heap; the full
     * `capacity`-slot vector is reserved only when a second distinct
     * value appears (see spill()).
     */
    bool
    record(std::uint64_t value)
    {
        ++records;
        bool hit;
        if (inlineActive) {
            if (inlineEntry.value == value) {
                inlineEntry.count += recordCanary ? 2 : 1;
                inlineEntry.lastUse = records;
                hit = true;
            } else {
                spill();
                hit = recordMiss(value);
            }
        } else if (hotIdx < entries.size() &&
                   entries[hotIdx].value == value) {
            TnvEntry &e = entries[hotIdx];
            e.count += recordCanary ? 2 : 1;
            e.lastUse = records;
            hit = true;
        } else if (entries.empty()) {
            // First value of an empty table: occupy the inline slot.
            recordFirstInline(value);
            hit = false;
        } else {
            hit = recordMiss(value);
        }
        if (cfg.policy == TnvConfig::Policy::SteadyClear &&
            ++sinceClear >= cfg.clearInterval) {
            sinceClear = 0;
            clearBottomHalf();
        }
        return hit;
    }

    /** Number of record() calls since construction/reset(). */
    std::uint64_t recordCount() const { return records; }

    /** Current number of occupied entries (<= capacity). */
    std::size_t size() const
    {
        return inlineActive ? 1 : entries.size();
    }
    unsigned capacity() const { return cfg.capacity; }

    /** Occupied entries, unordered. */
    TnvEntryView raw() const
    {
        return inlineActive ? TnvEntryView{&inlineEntry, 1}
                            : TnvEntryView{entries.data(), entries.size()};
    }

    /** Entries sorted by descending count (ties: older lastUse first). */
    std::vector<TnvEntry> sortedByCount() const;

    /** The most frequent entry, if any value was ever recorded. */
    std::optional<TnvEntry> top() const;

    /** Sum of all entry counts (executions covered by the table). */
    std::uint64_t coveredCount() const;

    /** Count recorded for a specific value (0 if absent). */
    std::uint64_t countFor(std::uint64_t value) const;

    /**
     * Evict the bottom half (by count, ceil(size/2) survivors) of the
     * table immediately. Exposed for tests; record() invokes it
     * automatically under the SteadyClear policy.
     */
    void clearBottomHalf();

    /**
     * Merge another table into this one, treating `other` as the
     * continuation of this table's stream (shard merging): counts of
     * shared values are summed, unseen values are inserted, and if the
     * union exceeds this table's capacity the top-`capacity` entries by
     * count are re-selected (LFU re-selection, ties to older entries).
     *
     * Merging is *not* bit-identical to recording the concatenated
     * stream sequentially: each shard made its own eviction decisions,
     * so counts a shard evicted are lost, exactly like the paper's own
     * TNV underestimation when a hot value re-enters the table. The
     * merged counts are therefore a (close) lower bound on the
     * sequential table's counts; see DESIGN.md, "Shard-and-merge
     * semantics".
     */
    void merge(const TnvTable &other);

    /** Forget everything. */
    void reset();

    /**
     * TEST HOOK — mutation canary for the differential harness. When
     * enabled, merge() combines the counts of shared values with max()
     * instead of summing them, silently under-counting exactly the way
     * a buggy merge would. vpcheck --canary asserts that the checkers
     * catch this within their trial budget. Global, not thread-safe;
     * only flip it from single-threaded test setup code.
     */
    static void setMergeCanaryForTest(bool enabled);
    static bool mergeCanaryForTest();

    /**
     * TEST HOOK — mutation canary for the record() fast path. When
     * enabled, the cached-hot-entry fast path double-counts its hits
     * while the slow scan path stays honest — exactly the kind of
     * fast/slow divergence a buggy hot-path rewrite would introduce.
     * vpcheck --canary asserts the differential checkers catch it.
     * Global, not thread-safe; only flip it from single-threaded test
     * setup code.
     */
    static void setRecordCanaryForTest(bool enabled);
    static bool recordCanaryForTest();

  private:
    /**
     * Slow path of record(): scan, insert, or evict-and-replace.
     * Returns true if the scan found the value (a hit).
     */
    bool recordMiss(std::uint64_t value);

    /** First value of a never-spilled table: occupy the inline slot. */
    void recordFirstInline(std::uint64_t value);

    /**
     * Leave the cold-entity form: reserve the full vector and move the
     * inline entry into it. Called when a second distinct value
     * appears, or when a merge makes the inline form insufficient.
     */
    void spill();

    std::size_t victimIndex() const;

    /** See setRecordCanaryForTest. */
    inline static bool recordCanary = false;

    TnvConfig cfg;
    std::vector<TnvEntry> entries;
    TnvEntry inlineEntry;        ///< cold-entity one-slot form
    bool inlineActive = false;   ///< inline slot occupied, vector unused
    std::uint64_t records = 0;
    std::uint64_t sinceClear = 0;
    std::size_t hotIdx = 0;  ///< index of the most recently hit entry
};

} // namespace core

#endif // VP_CORE_TNV_TABLE_HPP
