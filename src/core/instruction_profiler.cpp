#include "core/instruction_profiler.hpp"

#include "support/logging.hpp"

namespace core
{

InstructionProfiler::InstructionProfiler(const instr::Image &image,
                                         const InstProfilerConfig &config)
    : img(image), cfg(config), slotOf(image.numInsts(), -1),
      randomDraw(config.randomSeed)
{
    vp_assert(cfg.randomRate > 0.0 && cfg.randomRate <= 1.0,
              "randomRate must be in (0,1]");
}

InstructionProfiler::Record &
InstructionProfiler::ensureRecord(std::uint32_t pc)
{
    vp_assert(pc < slotOf.size(), "pc %u out of range", pc);
    std::int32_t slot = slotOf[pc];
    if (slot < 0) {
        slot = static_cast<std::int32_t>(slots.size());
        slots.emplaceBack(pc, cfg.profile, cfg.sampler);
        slotOf[pc] = slot;
    }
    return slots[static_cast<std::size_t>(slot)];
}

void
InstructionProfiler::profileInsts(instr::InstrumentManager &mgr,
                                  const std::vector<std::uint32_t> &pcs)
{
    for (auto pc : pcs) {
        ensureRecord(pc);
        mgr.instrumentInst(pc, this);
    }
}

void
InstructionProfiler::profileAllWrites(instr::InstrumentManager &mgr)
{
    profileInsts(mgr, img.regWritingInsts());
}

void
InstructionProfiler::profileLoads(instr::InstrumentManager &mgr)
{
    profileInsts(mgr, img.loadInsts());
}

void
InstructionProfiler::onInstValue(std::uint32_t pc,
                                 const vpsim::Inst &inst,
                                 std::uint64_t value)
{
    (void)inst;
    const std::int32_t slot = slotOf[pc];
    vp_assert(slot >= 0, "uninstrumented pc %u reached profiler", pc);
    Record &rec = slots[static_cast<std::size_t>(slot)];
    ++rec.totalExecutions;

    switch (cfg.mode) {
      case ProfileMode::Full:
        rec.profile.record(value);
        break;
      case ProfileMode::Random:
        if (randomDraw.chance(cfg.randomRate))
            rec.profile.record(value);
        break;
      case ProfileMode::Sampled:
        // Convergent sampling: the per-execution check is cheap;
        // only sampled executions pay the TNV update.
        if (rec.sampler.step()) {
            rec.profile.record(value);
            if (rec.sampler.burstJustEnded())
                rec.sampler.noteBurstEnd(rec.profile.invTop());
        }
        break;
    }
}

void
InstructionProfiler::onEventBlock(const vpsim::ExecEvent *events,
                                  std::size_t n,
                                  const std::uint64_t *arg_regs)
{
    (void)arg_regs;
    // The mode switch is hoisted out of the event loop; each loop
    // touches only InstWrote events at instrumented pcs (slot >= 0),
    // which is precisely the event set the routed path delivers.
    const std::int32_t *const slot_of = slotOf.data();

    switch (cfg.mode) {
      case ProfileMode::Full:
        for (std::size_t i = 0; i < n; ++i) {
            const vpsim::ExecEvent &e = events[i];
            if (e.kind != vpsim::ExecEvent::Kind::InstWrote)
                continue;
            const std::int32_t slot = slot_of[e.pc];
            if (slot < 0)
                continue;
            Record &rec = slots[static_cast<std::size_t>(slot)];
            ++rec.totalExecutions;
            rec.profile.record(e.value);
        }
        break;
      case ProfileMode::Random:
        for (std::size_t i = 0; i < n; ++i) {
            const vpsim::ExecEvent &e = events[i];
            if (e.kind != vpsim::ExecEvent::Kind::InstWrote)
                continue;
            const std::int32_t slot = slot_of[e.pc];
            if (slot < 0)
                continue;
            Record &rec = slots[static_cast<std::size_t>(slot)];
            ++rec.totalExecutions;
            if (randomDraw.chance(cfg.randomRate))
                rec.profile.record(e.value);
        }
        break;
      case ProfileMode::Sampled:
        for (std::size_t i = 0; i < n; ++i) {
            const vpsim::ExecEvent &e = events[i];
            if (e.kind != vpsim::ExecEvent::Kind::InstWrote)
                continue;
            const std::int32_t slot = slot_of[e.pc];
            if (slot < 0)
                continue;
            Record &rec = slots[static_cast<std::size_t>(slot)];
            ++rec.totalExecutions;
            if (rec.sampler.step()) {
                rec.profile.record(e.value);
                if (rec.sampler.burstJustEnded())
                    rec.sampler.noteBurstEnd(rec.profile.invTop());
            }
        }
        break;
    }
}

const InstructionProfiler::Record *
InstructionProfiler::recordFor(std::uint32_t pc) const
{
    if (pc >= slotOf.size() || slotOf[pc] < 0)
        return nullptr;
    return &slots[static_cast<std::size_t>(slotOf[pc])];
}

std::uint64_t
InstructionProfiler::totalExecutions() const
{
    std::uint64_t sum = 0;
    for (const auto &rec : slots)
        sum += rec.totalExecutions;
    return sum;
}

std::uint64_t
InstructionProfiler::profiledExecutions() const
{
    std::uint64_t sum = 0;
    for (const auto &rec : slots)
        sum += rec.profile.executions();
    return sum;
}

double
InstructionProfiler::fractionProfiled() const
{
    const std::uint64_t total = totalExecutions();
    return total ? static_cast<double>(profiledExecutions()) /
                       static_cast<double>(total)
                 : 1.0;
}

double
InstructionProfiler::weightedMetric(
    double (ValueProfile::*metric)() const) const
{
    double num = 0.0, den = 0.0;
    for (const auto &rec : slots) {
        const auto w = static_cast<double>(rec.totalExecutions);
        num += (rec.profile.*metric)() * w;
        den += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace core
