/**
 * @file
 * Instruction value profiler (thesis section III.E).
 *
 * Profiles the destination-register values of a chosen set of static
 * instructions. In Full mode every execution is recorded; in Sampled
 * mode each instruction runs the paper's convergent sampler and only
 * sampled executions are recorded, while total execution counts are
 * still maintained (the cheap "check" the paper leaves inlined).
 */

#ifndef VP_CORE_INSTRUCTION_PROFILER_HPP
#define VP_CORE_INSTRUCTION_PROFILER_HPP

#include <cstdint>
#include <vector>

#include "core/sampler.hpp"
#include "core/value_profile.hpp"
#include "instrument/manager.hpp"
#include "support/arena.hpp"
#include "support/rng.hpp"

namespace core
{

/** InstructionProfiler configuration. */
struct InstProfilerConfig
{
    ProfileConfig profile;
    ProfileMode mode = ProfileMode::Full;
    SamplerConfig sampler;
    /** Probability a given execution is profiled in Random mode. */
    double randomRate = 1.0 / 64.0;
    /** Seed for the Random mode's deterministic draw. */
    std::uint64_t randomSeed = 0xC0FFEE;
};

/** Value profiler over static instructions. */
class InstructionProfiler : public instr::Tool
{
  public:
    /** Per-instruction profiling record. */
    struct Record
    {
        std::uint32_t pc = 0;
        ValueProfile profile;
        SamplerState sampler;
        std::uint64_t totalExecutions = 0;

        Record(std::uint32_t pc_, const ProfileConfig &pcfg,
               const SamplerConfig &scfg)
            : pc(pc_), profile(pcfg), sampler(scfg)
        {}
    };

    InstructionProfiler(const instr::Image &image,
                        const InstProfilerConfig &config = {});

    /** Instrument a specific set of static instructions. */
    void profileInsts(instr::InstrumentManager &mgr,
                      const std::vector<std::uint32_t> &pcs);

    /** Instrument every register-writing instruction. */
    void profileAllWrites(instr::InstrumentManager &mgr);

    /** Instrument every load instruction (result values). */
    void profileLoads(instr::InstrumentManager &mgr);

    // Tool interface ---------------------------------------------------
    void onInstValue(std::uint32_t pc, const vpsim::Inst &inst,
                     std::uint64_t value) override;

    /**
     * Whole-batch fast path (see instr::Tool::onEventBlock): the
     * profiler self-filters by its own pc→slot map — the exact set of
     * pcs it registered — so the observable profile is identical to
     * the routed per-event path; sampling draws and sampler steps
     * happen in the same retirement order either way.
     */
    bool wantsEventBlocks() const override { return true; }
    void onEventBlock(const vpsim::ExecEvent *events, std::size_t n,
                      const std::uint64_t *arg_regs) override;

    // Results ----------------------------------------------------------

    /** Record for a pc, or nullptr if it was never instrumented. */
    const Record *recordFor(std::uint32_t pc) const;

    /** All records, in instrumentation order. */
    const vp::SlabArena<Record> &records() const { return slots; }

    /** Sum of total executions over all profiled instructions. */
    std::uint64_t totalExecutions() const;

    /** Sum of profiled (recorded) executions. */
    std::uint64_t profiledExecutions() const;

    /**
     * Overall fraction of executions that paid full profiling cost —
     * the paper's sampling-overhead metric.
     */
    double fractionProfiled() const;

    /**
     * Execution-weighted mean of a per-record metric, e.g.
     * weightedMean(&ValueProfile::invTop). Weighting by execution
     * frequency matches the paper's benchmark-level numbers.
     */
    double weightedMetric(double (ValueProfile::*metric)() const) const;

    const instr::Image &image() const { return img; }

  private:
    Record &ensureRecord(std::uint32_t pc);

    const instr::Image &img;
    InstProfilerConfig cfg;
    std::vector<std::int32_t> slotOf;  ///< pc -> slot index or -1
    /** Records never move once created (arena-backed), so pointers
     *  from recordFor() stay valid while the profiler lives. */
    vp::SlabArena<Record> slots;
    vp::Rng randomDraw;  ///< Random-mode sampling source
};

} // namespace core

#endif // VP_CORE_INSTRUCTION_PROFILER_HPP
