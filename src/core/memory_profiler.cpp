#include "core/memory_profiler.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace core
{

MemoryProfiler::MemoryProfiler(const MemProfilerConfig &config)
    : cfg(config), randomDraw(config.randomSeed)
{
    vp_assert(cfg.granularity > 0 &&
                  (cfg.granularity & (cfg.granularity - 1)) == 0,
              "granularity must be a power of two");
    vp_assert(cfg.randomRate > 0.0 && cfg.randomRate <= 1.0,
              "randomRate must be in (0,1]");
}

void
MemoryProfiler::instrument(instr::InstrumentManager &mgr)
{
    if (cfg.profileStores)
        mgr.instrumentStores(this);
    if (cfg.profileLoads)
        mgr.instrumentLoads(this);
}

MemoryProfiler::Location *
MemoryProfiler::ensureLocation(std::uint64_t bucket_addr)
{
    auto it = locations.find(bucket_addr);
    if (it != locations.end())
        return &it->second;
    if (cfg.maxLocations && locations.size() >= cfg.maxLocations) {
        sawOverflow = true;
        return nullptr;
    }
    it = locations
             .emplace(bucket_addr, Location(cfg.profile, cfg.sampler))
             .first;
    it->second.address = bucket_addr;
    return &it->second;
}

void
MemoryProfiler::onStoreValue(std::uint32_t pc, std::uint64_t addr,
                             unsigned size, std::uint64_t value)
{
    (void)pc;
    (void)size;
    if (!cfg.profileStores || !inWindow(addr))
        return;
    ++storeCount;
    Location *loc = ensureLocation(bucket(addr));
    if (!loc)
        return;
    ++loc->totalWrites;
    switch (cfg.mode) {
      case ProfileMode::Full:
        loc->writes.record(value);
        break;
      case ProfileMode::Random:
        if (randomDraw.chance(cfg.randomRate))
            loc->writes.record(value);
        break;
      case ProfileMode::Sampled:
        if (loc->sampler.step()) {
            loc->writes.record(value);
            if (loc->sampler.burstJustEnded())
                loc->sampler.noteBurstEnd(loc->writes.invTop());
        }
        break;
    }
}

void
MemoryProfiler::onLoadValue(std::uint32_t pc, std::uint64_t addr,
                            unsigned size, std::uint64_t value)
{
    (void)pc;
    (void)size;
    if (!cfg.profileLoads || !inWindow(addr))
        return;
    ++loadCount;
    if (Location *loc = ensureLocation(bucket(addr)))
        loc->reads.record(value);
}

const MemoryProfiler::Location *
MemoryProfiler::locationFor(std::uint64_t addr) const
{
    auto it = locations.find(bucket(addr));
    return it == locations.end() ? nullptr : &it->second;
}

std::vector<const MemoryProfiler::Location *>
MemoryProfiler::topLocationsByWrites(std::size_t n) const
{
    std::vector<const Location *> all;
    all.reserve(locations.size());
    for (const auto &[addr, loc] : locations)
        all.push_back(&loc);
    std::sort(all.begin(), all.end(),
              [](const Location *a, const Location *b) {
                  if (a->totalWrites != b->totalWrites)
                      return a->totalWrites > b->totalWrites;
                  return a->address < b->address;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

double
MemoryProfiler::fractionProfiled() const
{
    std::uint64_t recorded = 0;
    for (const auto &[addr, loc] : locations)
        recorded += loc.writes.executions();
    return storeCount ? static_cast<double>(recorded) /
                            static_cast<double>(storeCount)
                      : 1.0;
}

double
MemoryProfiler::weightedWriteMetric(
    double (ValueProfile::*metric)() const) const
{
    double num = 0.0, den = 0.0;
    for (const auto &[addr, loc] : locations) {
        // Weight by true write counts so sampled profiles keep the
        // same weighting as full ones.
        const auto w = static_cast<double>(loc.totalWrites);
        num += (loc.writes.*metric)() * w;
        den += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace core
