#include "core/memory_profiler.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace core
{

MemoryProfiler::MemoryProfiler(const MemProfilerConfig &config)
    : cfg(config), randomDraw(config.randomSeed)
{
    vp_assert(cfg.granularity > 0 &&
                  (cfg.granularity & (cfg.granularity - 1)) == 0,
              "granularity must be a power of two");
    vp_assert(cfg.randomRate > 0.0 && cfg.randomRate <= 1.0,
              "randomRate must be in (0,1]");
}

void
MemoryProfiler::instrument(instr::InstrumentManager &mgr)
{
    if (cfg.profileStores)
        mgr.instrumentStores(this);
    if (cfg.profileLoads)
        mgr.instrumentLoads(this);
}

MemoryProfiler::Location *
MemoryProfiler::ensureLocation(std::uint64_t bucket_addr)
{
    const std::uint32_t slot = index.lookup(bucket_addr);
    if (slot != vp::FlatIndexMap64::kNoIndex)
        return &locs[slot];
    if (cfg.maxLocations && locs.size() >= cfg.maxLocations) {
        sawOverflow = true;
        return nullptr;
    }
    Location &loc = locs.emplaceBack(cfg.profile, cfg.sampler);
    loc.address = bucket_addr;
    index.insert(bucket_addr,
                 static_cast<std::uint32_t>(locs.size() - 1));
    return &loc;
}

void
MemoryProfiler::onStoreValue(std::uint32_t pc, std::uint64_t addr,
                             unsigned size, std::uint64_t value)
{
    (void)pc;
    (void)size;
    if (!cfg.profileStores || !inWindow(addr))
        return;
    ++storeCount;
    Location *loc = ensureLocation(bucket(addr));
    if (!loc) {
        ++droppedStoreCount;
        return;
    }
    ++loc->totalWrites;
    switch (cfg.mode) {
      case ProfileMode::Full:
        loc->writes.record(value);
        break;
      case ProfileMode::Random:
        if (randomDraw.chance(cfg.randomRate))
            loc->writes.record(value);
        break;
      case ProfileMode::Sampled:
        if (loc->sampler.step()) {
            loc->writes.record(value);
            if (loc->sampler.burstJustEnded())
                loc->sampler.noteBurstEnd(loc->writes.invTop());
        }
        break;
    }
}

void
MemoryProfiler::onLoadValue(std::uint32_t pc, std::uint64_t addr,
                            unsigned size, std::uint64_t value)
{
    (void)pc;
    (void)size;
    if (!cfg.profileLoads || !inWindow(addr))
        return;
    ++loadCount;
    Location *loc = ensureLocation(bucket(addr));
    if (!loc) {
        ++droppedLoadCount;
        return;
    }
    // Loads obey cfg.mode exactly like stores, with an independent
    // convergent sampler per location (read and write streams converge
    // at different rates). Random mode shares the draw sequence with
    // stores: the draws interleave in retirement order, which keeps
    // the whole profile a deterministic function of the execution.
    ++loc->totalReads;
    switch (cfg.mode) {
      case ProfileMode::Full:
        loc->reads.record(value);
        break;
      case ProfileMode::Random:
        if (randomDraw.chance(cfg.randomRate))
            loc->reads.record(value);
        break;
      case ProfileMode::Sampled:
        if (loc->readSampler.step()) {
            loc->reads.record(value);
            if (loc->readSampler.burstJustEnded())
                loc->readSampler.noteBurstEnd(loc->reads.invTop());
        }
        break;
    }
}

void
MemoryProfiler::onEventBlock(const vpsim::ExecEvent *events,
                             std::size_t n,
                             const std::uint64_t *arg_regs)
{
    (void)arg_regs;
    for (std::size_t i = 0; i < n; ++i) {
        const vpsim::ExecEvent &e = events[i];
        if (e.kind == vpsim::ExecEvent::Kind::Store)
            onStoreValue(e.pc, e.addr, e.size, e.value);
        else if (e.kind == vpsim::ExecEvent::Kind::Load)
            onLoadValue(e.pc, e.addr, e.size, e.value);
    }
}

const MemoryProfiler::Location *
MemoryProfiler::locationFor(std::uint64_t addr) const
{
    const std::uint32_t slot = index.lookup(bucket(addr));
    return slot == vp::FlatIndexMap64::kNoIndex ? nullptr
                                                : &locs[slot];
}

std::vector<const MemoryProfiler::Location *>
MemoryProfiler::topLocationsByWrites(std::size_t n) const
{
    std::vector<const Location *> all;
    all.reserve(locs.size());
    for (const auto &loc : locs)
        all.push_back(&loc);
    std::sort(all.begin(), all.end(),
              [](const Location *a, const Location *b) {
                  if (a->totalWrites != b->totalWrites)
                      return a->totalWrites > b->totalWrites;
                  return a->address < b->address;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

double
MemoryProfiler::fractionProfiled() const
{
    std::uint64_t recorded = 0;
    for (const auto &loc : locs)
        recorded += loc.writes.executions();
    const std::uint64_t profileable = storeCount - droppedStoreCount;
    return profileable ? static_cast<double>(recorded) /
                             static_cast<double>(profileable)
                       : 1.0;
}

double
MemoryProfiler::weightedWriteMetric(
    double (ValueProfile::*metric)() const) const
{
    double num = 0.0, den = 0.0;
    for (const auto &loc : locs) {
        // Weight by true write counts so sampled profiles keep the
        // same weighting as full ones.
        const auto w = static_cast<double>(loc.totalWrites);
        num += (loc.writes.*metric)() * w;
        den += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace core
