/**
 * @file
 * Serializable profile summaries.
 *
 * A ProfileSnapshot captures, per profiled entity, the metrics and top
 * values a compiler client would consume — without the live TNV
 * machinery. Snapshots can be saved/loaded (simple line format) and
 * compared across runs, which is how the paper's train-vs-test
 * experiment (E6) is expressed.
 */

#ifndef VP_CORE_SNAPSHOT_HPP
#define VP_CORE_SNAPSHOT_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/instruction_profiler.hpp"
#include "core/memory_profiler.hpp"
#include "core/parameter_profiler.hpp"

namespace core
{

/** Metrics and top values of one profiled entity. */
struct EntitySummary
{
    std::uint64_t totalExecutions = 0;
    std::uint64_t profiledExecutions = 0;
    double invTop = 0.0;
    double invAll = 0.0;
    double lvp = 0.0;
    double zeroFraction = 0.0;
    std::uint64_t distinct = 0;
    /** (value, count) pairs, descending count. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> topValues;

    /** The most frequent value (0 if none was recorded). */
    std::uint64_t
    topValue() const
    {
        return topValues.empty() ? 0 : topValues.front().first;
    }

    bool
    hasTopValue(std::uint64_t v) const
    {
        for (const auto &[val, cnt] : topValues)
            if (val == v)
                return true;
        return false;
    }

    /**
     * Merge another summary of the SAME entity (a different shard of
     * its execution stream) into this one. Execution counters and
     * top-value counts are summed; Inv-Top/Inv-All are recomputed from
     * the merged counts; LVP and %Zero are combined as
     * profiled-execution-weighted means. `distinct` becomes the sum,
     * an upper bound — shards may have seen the same values, and the
     * underlying sets are no longer available at summary level.
     */
    void merge(const EntitySummary &other);
};

/** Snapshot of a whole profiling run, keyed by entity id (e.g. pc). */
class ProfileSnapshot
{
  public:
    std::map<std::uint64_t, EntitySummary> entities;

    /**
     * Accesses the producing profiler dropped because its location cap
     * stopped their bucket from existing (MemoryProfiler
     * droppedStores()/droppedLoads()). Zero for non-memory profilers.
     * Carried through save/load (v2 format) and summed by merge(), so
     * an aggregate of overflowing shards still reports its loss
     * exactly; the v1 text format predates them and saves/loads them
     * as zero.
     */
    std::uint64_t droppedStores = 0;
    std::uint64_t droppedLoads = 0;

    /** Build a summary from a live ValueProfile. */
    static EntitySummary summarize(const ValueProfile &prof,
                                   std::uint64_t total_executions);

    /** Build a snapshot of an instruction profiler (key = pc). */
    static ProfileSnapshot fromInstructionProfiler(
        const InstructionProfiler &prof);

    /** Build a snapshot of a memory profiler (key = bucket address,
     *  write profiles). */
    static ProfileSnapshot fromMemoryProfiler(const MemoryProfiler &prof);

    /**
     * Build a snapshot of a parameter profiler. Keys are opaque but
     * stable: hash(procedure name) * maxArgRegs + argument index, so
     * snapshots of the same program are comparable across runs.
     */
    static ProfileSnapshot fromParameterProfiler(
        const ParameterProfiler &prof);

    /**
     * Merge another snapshot of the SAME program into this one: shared
     * entity keys are merged summary-wise (see EntitySummary::merge),
     * unseen keys are copied. This is how the ParallelRunner
     * aggregates per-shard snapshots into one report.
     */
    void merge(const ProfileSnapshot &other);

    /** Entity count. */
    std::size_t size() const { return entities.size(); }

    /**
     * Fraction of in-table executions that were value-profiled:
     * sum(profiledExecutions) / sum(totalExecutions) over all
     * entities (1.0 when the snapshot is empty). Totals exclude
     * dropped accesses by construction — the profiler never created
     * locations for them — so this matches
     * MemoryProfiler::fractionProfiled() exactly, including on merged
     * aggregates of overflowing shards; droppedStores/droppedLoads
     * report that capacity loss separately.
     */
    double fractionProfiled() const;

    /** True if the producing run(s) dropped any accesses. */
    bool overflowed() const { return droppedStores || droppedLoads; }

    /** Snapshot file format versions save() can write. */
    static constexpr int kMinFormatVersion = 1;
    static constexpr int kFormatVersion = 2;

    /**
     * Persist in the requested format version:
     *   1  line-oriented text (the legacy format; no dropped-access
     *      counters)
     *   2  compressed binary: the v2 header line, a
     *      codec::encodeEntityBlock entity block, and a 4-byte
     *      little-endian CRC-32 footer over the block
     * Both round-trip bit-exactly through tryLoad.
     */
    void save(std::ostream &os, int version) const;

    /** Persist in the current default format (v2). */
    void save(std::ostream &os) const { save(os, kFormatVersion); }

    /** Load a snapshot saved by save(); fatal() on malformed input. */
    static ProfileSnapshot load(std::istream &is);

    /**
     * Non-fatal load for callers that must survive corrupt or
     * truncated input (the differential harness, replay tooling).
     * @return true on success, storing the snapshot in `out`; false
     *         otherwise with a diagnosis in `error` and `out` left
     *         empty.
     */
    static bool tryLoad(std::istream &is, ProfileSnapshot &out,
                        std::string &error);

    /**
     * Atomically persist to `path`: the snapshot is written to
     * `path.tmp` and renamed over `path` only once fully flushed, so a
     * crash mid-write leaves either the previous complete file or the
     * new one — never a torn snapshot. @return false with a diagnosis
     * on any I/O failure (the tmp file is removed).
     */
    bool saveToFile(const std::string &path, std::string &error) const;

    /** tryLoad() from a file path. */
    static bool tryLoadFile(const std::string &path,
                            ProfileSnapshot &out, std::string &error);
};

namespace testing
{
/**
 * Crash-injection hook for saveToFile: when nonzero, writing aborts
 * after this many bytes, before the rename — simulating a crash
 * mid-write. The atomic-save test uses it to prove the target file is
 * never torn. Always zero outside tests.
 */
extern std::size_t saveAbortAfterBytes;
} // namespace testing

/** Result of comparing two snapshots (thesis Table V.5 flavour). */
struct SnapshotComparison
{
    std::size_t commonEntities = 0;
    /** Pearson correlation of per-entity Inv-Top (unweighted). */
    double invTopCorrelation = 0.0;
    /** Execution-weighted mean |invTop_a - invTop_b|. */
    double meanAbsInvTopDelta = 0.0;
    /**
     * Execution-weighted fraction of entities whose run-A top value
     * appears among run-B's top values — "does the profile transfer".
     */
    double topValueTransfer = 0.0;
    /**
     * The same transfer rate restricted to entities that are at least
     * semi-invariant in run A (Inv-Top >= 0.5). This is the figure
     * that matters for the paper's clients: a variant instruction's
     * "top value" is an arbitrary sample, so its transfer is noise.
     */
    double topValueTransferInvariant = 0.0;
    /** Number of common entities with run-A Inv-Top >= 0.5. */
    std::size_t invariantEntities = 0;
};

/** Compare two snapshots over their common entities, weighted by A. */
SnapshotComparison compareSnapshots(const ProfileSnapshot &a,
                                    const ProfileSnapshot &b);

} // namespace core

#endif // VP_CORE_SNAPSHOT_HPP
