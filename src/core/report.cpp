#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/strings.hpp"
#include "vpsim/disasm.hpp"

namespace core
{

namespace
{

/** Records sorted by descending execution count. */
std::vector<const InstructionProfiler::Record *>
recordsByExecutions(const InstructionProfiler &prof)
{
    std::vector<const InstructionProfiler::Record *> recs;
    recs.reserve(prof.records().size());
    for (const auto &rec : prof.records())
        recs.push_back(&rec);
    std::sort(recs.begin(), recs.end(),
              [](const auto *a, const auto *b) {
                  if (a->totalExecutions != b->totalExecutions)
                      return a->totalExecutions > b->totalExecutions;
                  return a->pc < b->pc;
              });
    return recs;
}

void
addInstRow(vp::TextTable &table, const InstructionProfiler &prof,
           const InstructionProfiler::Record &rec)
{
    const auto &p = rec.profile;
    const auto top = p.tnv().top();
    table.row()
        .cell(static_cast<std::uint64_t>(rec.pc))
        .cell(vpsim::disassemble(prof.image().program(), rec.pc))
        .cell(rec.totalExecutions)
        .percent(p.invTop())
        .percent(p.invAll())
        .percent(p.lvp())
        .cell(p.distinct())
        .cell(top ? vp::format("%llu",
                               static_cast<unsigned long long>(
                                   top->value))
                  : std::string("-"));
}

} // namespace

vp::TextTable
instructionReport(const InstructionProfiler &prof, std::size_t limit)
{
    vp::TextTable table({"pc", "instruction", "execs", "InvTop%",
                         "InvAll%", "LVP%", "Diff", "top value"});
    auto recs = recordsByExecutions(prof);
    if (recs.size() > limit)
        recs.resize(limit);
    for (const auto *rec : recs)
        addInstRow(table, prof, *rec);
    return table;
}

vp::TextTable
semiInvariantReport(const InstructionProfiler &prof, double min_inv,
                    std::uint64_t min_execs, std::size_t limit)
{
    vp::TextTable table({"pc", "instruction", "execs", "InvTop%",
                         "InvAll%", "LVP%", "Diff", "top value"});
    for (const auto *rec : recordsByExecutions(prof)) {
        if (table.numRows() >= limit)
            break;
        if (rec->totalExecutions < min_execs)
            continue;
        if (rec->profile.invTop() < min_inv)
            continue;
        addInstRow(table, prof, *rec);
    }
    return table;
}

namespace
{

/** Snapshot entities sorted like recordsByExecutions (key = pc). */
std::vector<std::pair<std::uint32_t, const EntitySummary *>>
entitiesByExecutions(const ProfileSnapshot &snap)
{
    std::vector<std::pair<std::uint32_t, const EntitySummary *>> out;
    out.reserve(snap.entities.size());
    for (const auto &[key, s] : snap.entities)
        out.emplace_back(static_cast<std::uint32_t>(key), &s);
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  if (a.second->totalExecutions !=
                      b.second->totalExecutions)
                      return a.second->totalExecutions >
                             b.second->totalExecutions;
                  return a.first < b.first;
              });
    return out;
}

void
addSnapshotRow(vp::TextTable &table, const vpsim::Program &prog,
               std::uint32_t pc, const EntitySummary &s)
{
    table.row()
        .cell(static_cast<std::uint64_t>(pc))
        .cell(vpsim::disassemble(prog, pc))
        .cell(s.totalExecutions)
        .percent(s.invTop)
        .percent(s.invAll)
        .percent(s.lvp)
        .cell(s.distinct)
        .cell(s.topValues.empty()
                  ? std::string("-")
                  : vp::format("%llu",
                               static_cast<unsigned long long>(
                                   s.topValue())));
}

} // namespace

vp::TextTable
snapshotInstructionReport(const ProfileSnapshot &snap,
                          const vpsim::Program &prog, std::size_t limit)
{
    vp::TextTable table({"pc", "instruction", "execs", "InvTop%",
                         "InvAll%", "LVP%", "Diff", "top value"});
    auto entities = entitiesByExecutions(snap);
    if (entities.size() > limit)
        entities.resize(limit);
    for (const auto &[pc, s] : entities)
        addSnapshotRow(table, prog, pc, *s);
    return table;
}

vp::TextTable
snapshotSemiInvariantReport(const ProfileSnapshot &snap,
                            const vpsim::Program &prog, double min_inv,
                            std::uint64_t min_execs, std::size_t limit)
{
    vp::TextTable table({"pc", "instruction", "execs", "InvTop%",
                         "InvAll%", "LVP%", "Diff", "top value"});
    for (const auto &[pc, s] : entitiesByExecutions(snap)) {
        if (table.numRows() >= limit)
            break;
        if (s->totalExecutions < min_execs)
            continue;
        if (s->invTop < min_inv)
            continue;
        addSnapshotRow(table, prog, pc, *s);
    }
    return table;
}

vp::TextTable
memoryReport(const MemoryProfiler &prof, std::size_t limit)
{
    vp::TextTable table({"address", "writes", "InvTop%", "InvAll%",
                         "LVP%", "Zero%", "Diff", "top value"});
    for (const auto *loc : prof.topLocationsByWrites(limit)) {
        const auto &w = loc->writes;
        const auto top = w.tnv().top();
        table.row()
            .cell(vp::hex64(loc->address))
            .cell(loc->totalWrites)
            .percent(w.invTop())
            .percent(w.invAll())
            .percent(w.lvp())
            .percent(w.zeroFraction())
            .cell(w.distinct())
            .cell(top ? vp::format("%llu",
                                   static_cast<unsigned long long>(
                                       top->value))
                      : std::string("-"));
    }
    return table;
}

vp::TextTable
parameterReport(const ParameterProfiler &prof, std::size_t limit)
{
    vp::TextTable table({"procedure", "calls", "arg", "InvTop%",
                         "InvAll%", "LVP%", "Diff", "top value"});
    std::size_t procs = 0;
    for (const auto *rec : prof.byCallCount()) {
        if (procs++ >= limit)
            break;
        if (rec->args.empty()) {
            table.row()
                .cell(rec->proc->name)
                .cell(rec->calls)
                .cell("-");
            continue;
        }
        for (std::size_t i = 0; i < rec->args.size(); ++i) {
            const auto &arg = rec->args[i];
            const auto top = arg.tnv().top();
            table.row()
                .cell(i == 0 ? rec->proc->name : std::string(""))
                .cell(rec->calls)
                .cell(vp::format("a%zu", i))
                .percent(arg.invTop())
                .percent(arg.invAll())
                .percent(arg.lvp())
                .cell(arg.distinct())
                .cell(top ? vp::format("%llu",
                                       static_cast<unsigned long long>(
                                           top->value))
                          : std::string("-"));
        }
    }
    return table;
}

void
writeJsonDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    os << buf;
}

void
writeEntityJson(std::ostream &os, std::uint64_t key,
                const EntitySummary &summary)
{
    os << "{\"key\":" << key
       << ",\"total\":" << summary.totalExecutions
       << ",\"profiled\":" << summary.profiledExecutions
       << ",\"inv_top\":";
    writeJsonDouble(os, summary.invTop);
    os << ",\"inv_all\":";
    writeJsonDouble(os, summary.invAll);
    os << ",\"lvp\":";
    writeJsonDouble(os, summary.lvp);
    os << ",\"zero_fraction\":";
    writeJsonDouble(os, summary.zeroFraction);
    os << ",\"distinct\":" << summary.distinct
       << ",\"top_values\":[";
    bool first = true;
    for (const auto &[value, count] : summary.topValues) {
        os << (first ? "" : ",") << "{\"value\":" << value
           << ",\"count\":" << count << "}";
        first = false;
    }
    os << "]}";
}

} // namespace core
