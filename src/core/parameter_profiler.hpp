/**
 * @file
 * Procedure-parameter value profiler (thesis chapter on parameter
 * profiling).
 *
 * Records the values of each declared register argument at every call
 * to each procedure. Semi-invariant parameters are the classic target
 * for procedure specialization and memoization [32]: a procedure whose
 * hot argument is nearly always the same value can be cloned with that
 * argument bound as a constant.
 */

#ifndef VP_CORE_PARAMETER_PROFILER_HPP
#define VP_CORE_PARAMETER_PROFILER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/value_profile.hpp"
#include "instrument/manager.hpp"

namespace core
{

/** ParameterProfiler configuration. */
struct ParamProfilerConfig
{
    ProfileConfig profile;
    /**
     * Additionally profile each (procedure, call site) pair. Inspired
     * by the thesis's pointer to Young & Smith [40]: an argument that
     * is variant overall is often invariant *per call site*, which is
     * exactly what call-site-specific specialization needs.
     */
    bool contextSensitive = false;
};

/** Value profiler over procedure arguments. */
class ParameterProfiler : public instr::Tool
{
  public:
    /** Per-procedure profiling record. */
    struct ProcRecord
    {
        const vpsim::Procedure *proc = nullptr;
        std::uint64_t calls = 0;
        /** One profile per declared argument register. */
        std::vector<ValueProfile> args;
    };

    /** Per-(procedure, call site) record (context-sensitive mode). */
    struct SiteRecord
    {
        const vpsim::Procedure *proc = nullptr;
        std::uint32_t callerPc = 0;
        std::uint64_t calls = 0;
        std::vector<ValueProfile> args;
    };

    explicit ParameterProfiler(const ParamProfilerConfig &config = {});
    /** Convenience: context-insensitive with the given ValueProfile
     *  configuration. */
    explicit ParameterProfiler(const ProfileConfig &profile_config);

    /** Register interest with the instrumentation manager. */
    void instrument(instr::InstrumentManager &mgr);

    // Tool interface ---------------------------------------------------
    void onProcCall(const vpsim::Procedure &proc,
                    const std::uint64_t *args,
                    std::uint32_t caller_pc) override;

    // Results ----------------------------------------------------------

    /** Record for a procedure name, or nullptr. */
    const ProcRecord *recordFor(const std::string &proc_name) const;

    /** Procedures ordered by descending call count. */
    std::vector<const ProcRecord *> byCallCount() const;

    /** Total profiled calls across all procedures. */
    std::uint64_t totalCalls() const;

    /**
     * Call-weighted mean of a metric over all arguments of all
     * procedures (each argument weighted by its procedure's calls).
     */
    double weightedArgMetric(double (ValueProfile::*metric)() const)
        const;

    // Context-sensitive results ----------------------------------------

    /** All call-site records of one procedure (empty unless enabled). */
    std::vector<const SiteRecord *>
    sitesFor(const std::string &proc_name) const;

    /** All call-site records, ordered by descending calls. */
    std::vector<const SiteRecord *> allSites() const;

    /**
     * Call-weighted fraction of (argument, weight) mass whose Inv-Top
     * reaches `threshold`, measured globally per procedure vs per
     * call site — the pair of numbers that quantifies what context
     * sensitivity buys.
     */
    double semiInvariantArgFraction(double threshold) const;
    double semiInvariantArgFractionPerSite(double threshold) const;

  private:
    ParamProfilerConfig cfg;
    std::unordered_map<std::string, ProcRecord> procRecords;
    /** Keyed by (procedure name, caller pc). */
    std::map<std::pair<std::string, std::uint32_t>, SiteRecord>
        siteRecords;
};

} // namespace core

#endif // VP_CORE_PARAMETER_PROFILER_HPP
