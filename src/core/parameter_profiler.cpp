#include "core/parameter_profiler.hpp"

#include <algorithm>

namespace core
{

ParameterProfiler::ParameterProfiler(const ParamProfilerConfig &config)
    : cfg(config)
{
}

ParameterProfiler::ParameterProfiler(const ProfileConfig &profile_config)
    : cfg{profile_config, false}
{
}

void
ParameterProfiler::instrument(instr::InstrumentManager &mgr)
{
    mgr.instrumentCalls(this);
}

void
ParameterProfiler::onProcCall(const vpsim::Procedure &proc,
                              const std::uint64_t *args,
                              std::uint32_t caller_pc)
{
    ProcRecord &rec = procRecords[proc.name];
    if (rec.proc == nullptr) {
        rec.proc = &proc;
        rec.args.reserve(proc.numArgs);
        for (unsigned i = 0; i < proc.numArgs; ++i)
            rec.args.emplace_back(cfg.profile);
    }
    ++rec.calls;
    for (unsigned i = 0; i < proc.numArgs; ++i)
        rec.args[i].record(args[i]);

    if (!cfg.contextSensitive)
        return;
    SiteRecord &site = siteRecords[{proc.name, caller_pc}];
    if (site.proc == nullptr) {
        site.proc = &proc;
        site.callerPc = caller_pc;
        site.args.reserve(proc.numArgs);
        for (unsigned i = 0; i < proc.numArgs; ++i)
            site.args.emplace_back(cfg.profile);
    }
    ++site.calls;
    for (unsigned i = 0; i < proc.numArgs; ++i)
        site.args[i].record(args[i]);
}

const ParameterProfiler::ProcRecord *
ParameterProfiler::recordFor(const std::string &proc_name) const
{
    auto it = procRecords.find(proc_name);
    return it == procRecords.end() ? nullptr : &it->second;
}

std::vector<const ParameterProfiler::ProcRecord *>
ParameterProfiler::byCallCount() const
{
    std::vector<const ProcRecord *> out;
    out.reserve(procRecords.size());
    for (const auto &[name, rec] : procRecords)
        out.push_back(&rec);
    std::sort(out.begin(), out.end(),
              [](const ProcRecord *a, const ProcRecord *b) {
                  if (a->calls != b->calls)
                      return a->calls > b->calls;
                  return a->proc->name < b->proc->name;
              });
    return out;
}

std::uint64_t
ParameterProfiler::totalCalls() const
{
    std::uint64_t sum = 0;
    for (const auto &[name, rec] : procRecords)
        sum += rec.calls;
    return sum;
}

double
ParameterProfiler::weightedArgMetric(
    double (ValueProfile::*metric)() const) const
{
    double num = 0.0, den = 0.0;
    for (const auto &[name, rec] : procRecords) {
        for (const auto &arg : rec.args) {
            const auto w = static_cast<double>(rec.calls);
            num += (arg.*metric)() * w;
            den += w;
        }
    }
    return den > 0.0 ? num / den : 0.0;
}

std::vector<const ParameterProfiler::SiteRecord *>
ParameterProfiler::sitesFor(const std::string &proc_name) const
{
    std::vector<const SiteRecord *> out;
    for (const auto &[key, site] : siteRecords)
        if (key.first == proc_name)
            out.push_back(&site);
    return out;
}

std::vector<const ParameterProfiler::SiteRecord *>
ParameterProfiler::allSites() const
{
    std::vector<const SiteRecord *> out;
    out.reserve(siteRecords.size());
    for (const auto &[key, site] : siteRecords)
        out.push_back(&site);
    std::sort(out.begin(), out.end(),
              [](const SiteRecord *a, const SiteRecord *b) {
                  if (a->calls != b->calls)
                      return a->calls > b->calls;
                  if (a->proc->name != b->proc->name)
                      return a->proc->name < b->proc->name;
                  return a->callerPc < b->callerPc;
              });
    return out;
}

double
ParameterProfiler::semiInvariantArgFraction(double threshold) const
{
    double num = 0.0, den = 0.0;
    for (const auto &[name, rec] : procRecords) {
        for (const auto &arg : rec.args) {
            const auto w = static_cast<double>(rec.calls);
            den += w;
            if (arg.invTop() >= threshold)
                num += w;
        }
    }
    return den > 0.0 ? num / den : 0.0;
}

double
ParameterProfiler::semiInvariantArgFractionPerSite(double threshold)
    const
{
    double num = 0.0, den = 0.0;
    for (const auto &[key, site] : siteRecords) {
        for (const auto &arg : site.args) {
            const auto w = static_cast<double>(site.calls);
            den += w;
            if (arg.invTop() >= threshold)
                num += w;
        }
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace core
