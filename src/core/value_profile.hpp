/**
 * @file
 * Per-entity value profile: a TNV table plus the running counters
 * needed for the paper's metrics (thesis section III.C):
 *
 *  - Inv-Top : fraction of profiled executions that produced the most
 *              frequent value in the final TNV table;
 *  - Inv-All : fraction covered by all values in the final TNV table;
 *  - LVP     : last-value predictability — fraction of executions whose
 *              value equalled the immediately preceding one;
 *  - Diff    : number of distinct values seen;
 *  - %Zero   : fraction of executions producing zero.
 *
 * Inv-Top/Inv-All are computed from TNV counts, so (faithful to the
 * paper) they slightly underestimate true frequencies when a hot value
 * was evicted and re-entered the table.
 */

#ifndef VP_CORE_VALUE_PROFILE_HPP
#define VP_CORE_VALUE_PROFILE_HPP

#include <cstdint>

#include "core/tnv_table.hpp"
#include "support/flat_set.hpp"

namespace core
{

/** Configuration for a ValueProfile. */
struct ProfileConfig
{
    TnvConfig tnv;

    /** Track last-value hits (LVP metric). */
    bool trackLastValue = true;

    /**
     * Track the exact number of distinct values (Diff metric). The
     * paper's profiler counted these exactly; we cap the set size to
     * bound memory and report saturation.
     */
    bool trackDistinct = true;
    std::size_t maxDistinct = 1u << 20;

    /**
     * Also keep a TNV table of successive-value *deltas* (stride
     * profiling — the thesis's future-work hook for driving stride
     * predictors from profiles: an instruction whose delta stream is
     * invariant is stride-predictable even when its values are not).
     */
    bool trackStrides = false;
    TnvConfig strideTnv;
};

/** Value profile of a single entity. */
class ValueProfile
{
  public:
    explicit ValueProfile(const ProfileConfig &config = {});

    /**
     * Record one observed value. Inlined: this is the profiler's
     * innermost loop. The distinct-set probe — the expensive part for
     * value-rich entities, whose spilled sets outgrow the cache — is
     * skipped whenever the value is provably already in the set: a
     * TNV *hit* means this exact value was recorded before (so an
     * earlier record() inserted it, or the set had saturated — sticky
     * either way), and the same holds for a repeat of the previous
     * value. Only values new to the TNV table pay the probe.
     */
    void
    record(std::uint64_t value)
    {
        const bool tnv_hit = table.record(value);
        if (value == 0)
            ++zeros;
        const bool repeat_of_last = hasLast && value == lastValue;
        if (cfg.trackLastValue || cfg.trackStrides) {
            if (cfg.trackLastValue && repeat_of_last)
                ++lastHits;
            if (cfg.trackStrides && hasLast)
                strides.record(value - lastValue);
            lastValue = value;
            hasLast = true;
        }
        if (cfg.trackDistinct && !saturated && !tnv_hit &&
            !repeat_of_last) {
            if (seen.insert(value)) {
                ++distinctCount;
                if (seen.size() >= cfg.maxDistinct)
                    saturated = true;
            }
        }
    }

    /** Profiled executions (record() calls). */
    std::uint64_t executions() const { return table.recordCount(); }

    /** Inv-Top in [0,1]; 0 when nothing was profiled. */
    double invTop() const;

    /** Inv-All in [0,1]; 0 when nothing was profiled. */
    double invAll() const;

    /** LVP in [0,1]; the first execution always misses. */
    double lvp() const;

    /** Fraction of executions that produced zero. */
    double zeroFraction() const;

    /** Number of distinct values seen (saturating). */
    std::uint64_t distinct() const { return distinctCount; }
    /** True if the distinct-value set hit its cap. */
    bool distinctSaturated() const { return saturated; }

    std::uint64_t zeroCount() const { return zeros; }
    std::uint64_t lvpHits() const { return lastHits; }

    const TnvTable &tnv() const { return table; }

    /**
     * Fraction of deltas equal to the most frequent delta (0 unless
     * trackStrides is enabled and at least two values were recorded).
     * A high strideInvTop with a nonzero top delta marks an
     * instruction a stride predictor will capture.
     */
    double strideInvTop() const;

    /** Most frequent successive delta (0 when unavailable). */
    std::int64_t topStride() const;

    /** The delta TNV table (empty unless trackStrides). */
    const TnvTable &strideTnvTable() const { return strides; }

    /**
     * Merge another profile into this one, treating `other` as the
     * profile of the *following* shard of the same value stream.
     * Counters and TNV tables are count-summed (see TnvTable::merge);
     * the distinct-value sets are unioned (saturating at the cap).
     *
     * Documented merge tolerance (DESIGN.md, "Shard-and-merge
     * semantics"): LVP and stride tracking cannot see across the shard
     * boundary — a potential last-value hit and one successive delta
     * per merge are dropped, so merged LVP can be lower than the
     * sequential value by at most (K-1)/n for K shards of n total
     * executions. Inv-Top/Inv-All inherit the TNV merge's slight
     * underestimation when tables overflowed; they are exact when no
     * shard's table ever evicted.
     */
    void merge(const ValueProfile &other);

    /** Forget everything (used between sampling epochs in tests). */
    void reset();

  private:
    ProfileConfig cfg;
    TnvTable table;
    TnvTable strides;
    std::uint64_t zeros = 0;
    std::uint64_t lastHits = 0;
    std::uint64_t lastValue = 0;
    bool hasLast = false;
    vp::FlatSet64 seen;
    std::uint64_t distinctCount = 0;
    bool saturated = false;
};

} // namespace core

#endif // VP_CORE_VALUE_PROFILE_HPP
