/**
 * @file
 * Memory-location value profiler (thesis chapter on profiling memory).
 *
 * Where the instruction profiler asks "what does this *instruction*
 * produce", the memory profiler asks "what does this *location* hold":
 * every store to an address updates that location's TNV table, so a
 * location's invariance says how stable its contents are — the signal
 * used for data specialization and speculative load reordering [29].
 * Load values can optionally be profiled per location as well, under
 * the same profiling mode as writes.
 *
 * Addresses are bucketed at a configurable granularity (default 8
 * bytes, the natural word size) and can be restricted to an address
 * window (e.g. the data segment only, excluding the stack).
 *
 * Storage: location records live in a SlabArena (stable addresses,
 * insertion-order iteration) addressed through a flat open-addressing
 * index — the hot lookup is one hash probe into a contiguous table
 * instead of the old unordered_map's node chase, and record creation
 * is a pointer bump instead of a heap allocation.
 */

#ifndef VP_CORE_MEMORY_PROFILER_HPP
#define VP_CORE_MEMORY_PROFILER_HPP

#include <cstdint>
#include <vector>

#include "core/sampler.hpp"
#include "core/value_profile.hpp"
#include "instrument/manager.hpp"
#include "support/arena.hpp"
#include "support/flat_map.hpp"
#include "support/rng.hpp"

namespace core
{

/** MemoryProfiler configuration. */
struct MemProfilerConfig
{
    ProfileConfig profile;
    /**
     * Full, convergent-sampled, or random-sampled recording. The mode
     * governs stores and (when enabled) loads alike; each location
     * runs separate samplers for its write and read streams, while
     * Random mode draws from one shared deterministic sequence in
     * retirement order.
     */
    ProfileMode mode = ProfileMode::Full;
    SamplerConfig sampler;
    double randomRate = 1.0 / 64.0;
    std::uint64_t randomSeed = 0xC0FFEE;
    /** Address-bucket size in bytes (power of two). */
    unsigned granularity = 8;
    /** Record values written by stores (location contents). */
    bool profileStores = true;
    /** Record values observed by loads. */
    bool profileLoads = false;
    /** Inclusive lower bound of the profiled address window. */
    std::uint64_t windowBegin = 0;
    /** Exclusive upper bound (0 means "no limit"). */
    std::uint64_t windowEnd = 0;
    /** Stop creating new locations past this many (0 = unlimited). */
    std::size_t maxLocations = 1u << 22;
};

/** Value profiler over memory locations. */
class MemoryProfiler : public instr::Tool
{
  public:
    explicit MemoryProfiler(const MemProfilerConfig &config = {});

    /** Register interest with the instrumentation manager. */
    void instrument(instr::InstrumentManager &mgr);

    // Tool interface ---------------------------------------------------
    void onStoreValue(std::uint32_t pc, std::uint64_t addr,
                      unsigned size, std::uint64_t value) override;
    void onLoadValue(std::uint32_t pc, std::uint64_t addr,
                     unsigned size, std::uint64_t value) override;

    /**
     * Whole-batch fast path (see instr::Tool::onEventBlock): the
     * profiler picks the Load/Store events out of the raw batch and
     * feeds them to the same per-access handlers the routed path
     * calls, in the same retirement order — identical profiles,
     * one virtual call per basic block.
     */
    bool wantsEventBlocks() const override { return true; }
    void onEventBlock(const vpsim::ExecEvent *events, std::size_t n,
                      const std::uint64_t *arg_regs) override;

    // Results ----------------------------------------------------------

    /** A profiled location. */
    struct Location
    {
        std::uint64_t address = 0;  ///< bucket base address
        std::uint64_t totalWrites = 0;  ///< including unsampled ones
        std::uint64_t totalReads = 0;   ///< including unsampled ones
        ValueProfile writes;
        ValueProfile reads;
        SamplerState sampler;      ///< convergent sampler for writes
        SamplerState readSampler;  ///< convergent sampler for reads

        Location(const ProfileConfig &pcfg, const SamplerConfig &scfg)
            : writes(pcfg), reads(pcfg), sampler(scfg),
              readSampler(scfg)
        {}
    };

    /** Number of distinct locations touched. */
    std::size_t numLocations() const { return locs.size(); }

    /** Location record for an address (bucketed), or nullptr. */
    const Location *locationFor(std::uint64_t addr) const;

    /**
     * The n locations with the most profiled writes, ordered by
     * descending write count — the paper's "top locations" table.
     */
    std::vector<const Location *> topLocationsByWrites(std::size_t n) const;

    /** Execution-weighted mean write metric over all locations. */
    double weightedWriteMetric(double (ValueProfile::*metric)() const)
        const;

    /** Total in-window stores / loads (profiled or not). */
    std::uint64_t totalStores() const { return storeCount; }
    std::uint64_t totalLoads() const { return loadCount; }

    /**
     * In-window accesses dropped because maxLocations stopped their
     * bucket from being created. Reported separately so the sampling
     * metric below stays a statement about sampling, not capacity.
     */
    std::uint64_t droppedStores() const { return droppedStoreCount; }
    std::uint64_t droppedLoads() const { return droppedLoadCount; }

    /**
     * Fraction of profileable stores (in-window stores that reached a
     * live location) actually recorded — the sampling-overhead metric.
     * Stores lost to the maxLocations cap are excluded from the
     * denominator: they could never have been recorded at any sampling
     * rate, and counting them would understate a sampler's coverage on
     * overflowing runs. See droppedStores() for that loss.
     */
    double fractionProfiled() const;

    /** True if maxLocations stopped new buckets from being created. */
    bool overflowed() const { return sawOverflow; }

  private:
    std::uint64_t bucket(std::uint64_t addr) const
    {
        return addr & ~static_cast<std::uint64_t>(cfg.granularity - 1);
    }

    bool
    inWindow(std::uint64_t addr) const
    {
        if (addr < cfg.windowBegin)
            return false;
        return cfg.windowEnd == 0 || addr < cfg.windowEnd;
    }

    Location *ensureLocation(std::uint64_t bucket_addr);

    MemProfilerConfig cfg;
    vp::SlabArena<Location> locs;  ///< records, insertion-ordered
    vp::FlatIndexMap64 index;      ///< bucket address -> arena index
    std::uint64_t storeCount = 0;
    std::uint64_t loadCount = 0;
    std::uint64_t droppedStoreCount = 0;
    std::uint64_t droppedLoadCount = 0;
    bool sawOverflow = false;
    vp::Rng randomDraw{0xC0FFEE};
};

} // namespace core

#endif // VP_CORE_MEMORY_PROFILER_HPP
