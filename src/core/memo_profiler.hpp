/**
 * @file
 * Memoization-potential profiler (Richardson [32], thesis §IV.C.4:
 * "keeping a memoization cache of recently executed function results
 * with their inputs").
 *
 * For each procedure, hashes the full argument tuple of every call
 * and measures how often a tuple repeats — against an unbounded
 * history (the upper bound on memoization hit rate) and against a
 * direct-mapped cache of configurable size (what a realistic software
 * cache would achieve). Combined with the purity analysis
 * (specialize/purity.hpp) this yields the legal, profitable
 * memoization candidates.
 */

#ifndef VP_CORE_MEMO_PROFILER_HPP
#define VP_CORE_MEMO_PROFILER_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "instrument/manager.hpp"

namespace core
{

/** MemoProfiler configuration. */
struct MemoProfilerConfig
{
    /** Direct-mapped tuple-cache size = 2^cacheIndexBits entries. */
    unsigned cacheIndexBits = 8;
    /** Cap on the distinct-tuple set per procedure. */
    std::size_t maxDistinctTuples = 1u << 20;
};

/** Argument-tuple repetition profiler. */
class MemoProfiler : public instr::Tool
{
  public:
    /** Per-procedure tuple statistics. */
    struct ProcStats
    {
        const vpsim::Procedure *proc = nullptr;
        std::uint64_t calls = 0;
        std::uint64_t distinctTuples = 0;
        bool distinctSaturated = false;
        std::uint64_t unboundedHits = 0;  ///< tuple seen before (ever)
        std::uint64_t cacheHits = 0;      ///< direct-mapped cache hit

        double
        unboundedHitRate() const
        {
            return calls ? static_cast<double>(unboundedHits) /
                               static_cast<double>(calls)
                         : 0.0;
        }

        double
        cacheHitRate() const
        {
            return calls ? static_cast<double>(cacheHits) /
                               static_cast<double>(calls)
                         : 0.0;
        }
    };

    explicit MemoProfiler(const MemoProfilerConfig &config = {});

    /** Register interest with the instrumentation manager. */
    void instrument(instr::InstrumentManager &mgr);

    // Tool interface ---------------------------------------------------
    void onProcCall(const vpsim::Procedure &proc,
                    const std::uint64_t *args,
                    std::uint32_t caller_pc) override;

    // Results ----------------------------------------------------------

    /** Stats for a procedure name, or nullptr. */
    const ProcStats *statsFor(const std::string &proc_name) const;

    /** Procedures ordered by descending call count. */
    std::vector<const ProcStats *> byCallCount() const;

  private:
    struct ProcState
    {
        ProcStats stats;
        std::unordered_set<std::uint64_t> seen;
        std::vector<std::uint64_t> cacheTags;
        std::vector<bool> cacheValid;
    };

    MemoProfilerConfig cfg;
    std::unordered_map<std::string, ProcState> states;
};

} // namespace core

#endif // VP_CORE_MEMO_PROFILER_HPP
