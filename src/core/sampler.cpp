#include "core/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"

namespace core
{

SamplerState::SamplerState(const SamplerConfig &config)
    : cfg(config), phaseLeft(config.burstSize),
      curSkip(config.initialSkip)
{
    vp_assert(cfg.burstSize >= 1, "burst size must be positive");
    vp_assert(cfg.backoffFactor >= 1.0, "backoff must be >= 1");
}

bool
SamplerState::step()
{
    vp_assert(!burstEnded,
              "noteBurstEnd() must be called before the next step()");
    ++total;
    if (inBurst) {
        ++profiled;
        if (--phaseLeft == 0)
            burstEnded = true; // caller reports invariance next
        return true;
    }
    if (--phaseLeft == 0) {
        inBurst = true;
        phaseLeft = cfg.burstSize;
    }
    return false;
}

BurstEvent
SamplerState::noteBurstEnd(double inv_estimate)
{
    vp_assert(burstEnded, "no burst has just ended");
    burstEnded = false;
    VP_STAT_INC(vp::stats::Cid::SamplerBursts);

    BurstEvent event = BurstEvent::None;
    bool retriggered = false;
    if (lastInv >= 0.0) {
        const double delta = std::fabs(inv_estimate - lastInv);
        if (isConverged) {
            // Wake-up burst: large shifts mean a phase change.
            if (delta >= cfg.retriggerDelta) {
                isConverged = false;
                stableRounds = 0;
                curSkip = cfg.initialSkip;
                retriggered = true;
                event = BurstEvent::Retriggered;
                VP_STAT_INC(vp::stats::Cid::SamplerRetriggers);
            } else {
                // Still converged: keep backing off.
                curSkip = std::min<std::uint64_t>(
                    cfg.maxSkip,
                    static_cast<std::uint64_t>(
                        static_cast<double>(curSkip) *
                        cfg.backoffFactor));
                VP_STAT_INC(vp::stats::Cid::SamplerBackoffs);
            }
        } else if (delta < cfg.convergenceDelta) {
            if (++stableRounds >= cfg.convergeRounds) {
                isConverged = true;
                event = BurstEvent::Converged;
                curSkip = std::min<std::uint64_t>(
                    cfg.maxSkip,
                    static_cast<std::uint64_t>(
                        static_cast<double>(curSkip) *
                        cfg.backoffFactor));
                VP_STAT_INC(vp::stats::Cid::SamplerConvergences);
                VP_STAT_INC(vp::stats::Cid::SamplerBackoffs);
            }
        } else {
            stableRounds = 0;
            curSkip = cfg.initialSkip;
        }
    }
    lastInv = inv_estimate;

    // A phase change re-triggers full-rate sampling *immediately*: the
    // next burst starts on the very next execution, with no intervening
    // skip phase, so the profile catches up with the new phase as fast
    // as possible. curSkip was reset above, so subsequent inter-burst
    // gaps are back at the initial (pre-convergence) rate.
    if (retriggered) {
        inBurst = true;
        phaseLeft = cfg.burstSize;
        return event;
    }

    // Enter the skip phase (possibly zero-length).
    if (curSkip == 0) {
        inBurst = true;
        phaseLeft = cfg.burstSize;
    } else {
        inBurst = false;
        phaseLeft = curSkip;
    }
    return event;
}

} // namespace core
