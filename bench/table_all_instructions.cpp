/**
 * @file
 * E3 — thesis Table V.2: value profile over ALL register-writing
 * instructions per benchmark (same metrics as E2).
 *
 * Paper shape: all-instruction invariance is lower than load
 * invariance on most programs, but still substantial, and LVP remains
 * above Inv-Top.
 */

#include <iostream>

#include "bench/common.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_all_instructions");
    vp::TextTable table({"program", "profiled(M)", "LVP%", "InvTop%",
                         "InvAll%", "Diff/inst", "Zero%"});

    double sum_lvp = 0, sum_top = 0, sum_all = 0;
    int n = 0;
    // One profiling shard per workload, fanned out across cores;
    // results come back in canonical order so the table is identical
    // to the old sequential driver's.
    const auto runs = bench::profileSuite(
        "train", bench::Target::AllWrites, {}, bench::benchJobs());
    const auto &suite = workloads::allWorkloads();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto *w = suite[i];
        const auto &run = runs[i];
        double profiled_m = 0;
        for (const auto &[pc, s] : run.snapshot.entities)
            profiled_m += static_cast<double>(s.totalExecutions);
        table.row()
            .cell(w->name())
            .cell(profiled_m / 1e6, 2)
            .percent(run.lvp)
            .percent(run.invTop)
            .percent(run.invAll)
            .cell(run.meanDistinct, 1)
            .percent(run.zeroFraction);
        sum_lvp += run.lvp;
        sum_top += run.invTop;
        sum_all += run.invAll;
        ++n;
    }
    table.row()
        .cell("average")
        .cell("")
        .percent(sum_lvp / n)
        .percent(sum_top / n)
        .percent(sum_all / n);

    table.print(std::cout,
                "E3 (Table V.2): value profile over all "
                "register-writing instructions, train inputs");
    return 0;
}
