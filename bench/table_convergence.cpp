/**
 * @file
 * E7 — MICRO-30 Tables 4-5: convergent sampling accuracy vs work.
 * Sweeps sampler configurations over the suite and reports, per
 * configuration: fraction of executions profiled (the overhead
 * proxy), mean absolute Inv-Top error vs the full profile, top-value
 * transfer of semi-invariant instructions, and fraction of static
 * instructions converged at program end.
 *
 * Paper shape: sampling profiles a few percent of executions while
 * keeping invariance estimates within a few points of the full
 * profile; more aggressive backoff trades accuracy for work.
 */

#include <iostream>

#include "bench/common.hpp"
#include "support/table.hpp"

namespace
{

struct Config
{
    const char *name;
    core::ProfileMode mode = core::ProfileMode::Sampled;
    core::SamplerConfig sampler;
    double randomRate = 1.0 / 64.0;
};

std::vector<Config>
sweep()
{
    std::vector<Config> configs;

    core::SamplerConfig base;
    configs.push_back({"default", core::ProfileMode::Sampled, base,
                       0});

    core::SamplerConfig aggressive = base;
    aggressive.burstSize = 32;
    aggressive.initialSkip = 992;
    aggressive.backoffFactor = 4.0;
    aggressive.maxSkip = 256 * 1024;
    configs.push_back({"aggressive", core::ProfileMode::Sampled,
                       aggressive, 0});

    core::SamplerConfig cautious = base;
    cautious.burstSize = 128;
    cautious.initialSkip = 128;
    cautious.convergeRounds = 5;
    cautious.maxSkip = 8 * 1024;
    configs.push_back({"cautious", core::ProfileMode::Sampled,
                       cautious, 0});

    core::SamplerConfig no_backoff = base;
    no_backoff.backoffFactor = 1.0;
    configs.push_back({"no-backoff", core::ProfileMode::Sampled,
                       no_backoff, 0});

    core::SamplerConfig tight_delta = base;
    tight_delta.convergenceDelta = 0.005;
    tight_delta.convergeRounds = 5;
    configs.push_back({"tight-delta", core::ProfileMode::Sampled,
                       tight_delta, 0});

    // The thesis's open question about CPI [1]: uniform random
    // sampling at rates bracketing the convergent sampler's budget.
    configs.push_back({"random 2%", core::ProfileMode::Random, base,
                       0.02});
    configs.push_back({"random 0.7%", core::ProfileMode::Random, base,
                       0.007});

    return configs;
}

} // namespace

int
main()
{
    bench::StatsSession stats_session("table_convergence");
    vp::TextTable table({"config", "profiled%", "|dInvTop|%",
                         "transfer%", "converged%"});

    for (const auto &config : sweep()) {
        double frac_sum = 0, err_sum = 0, transfer_sum = 0,
               conv_sum = 0;
        int n = 0;
        for (const auto *w : workloads::allWorkloads()) {
            const auto full = bench::profileWorkload(
                *w, "train", bench::Target::AllWrites);

            core::InstProfilerConfig cfg;
            cfg.mode = config.mode;
            cfg.sampler = config.sampler;
            if (config.randomRate > 0)
                cfg.randomRate = config.randomRate;

            // Run the sampled profile with direct access to the
            // profiler for convergence statistics.
            const vpsim::Program &prog = w->program();
            instr::Image img(prog);
            instr::InstrumentManager mgr(img);
            vpsim::Cpu cpu(prog, bench::cpuConfig());
            core::InstructionProfiler prof(img, cfg);
            prof.profileAllWrites(mgr);
            mgr.attach(cpu);
            workloads::runToCompletion(cpu, *w, "train");

            const auto sampled =
                core::ProfileSnapshot::fromInstructionProfiler(prof);
            const auto cmp =
                core::compareSnapshots(full.snapshot, sampled);

            std::size_t converged = 0, hot = 0;
            for (const auto &rec : prof.records()) {
                if (rec.totalExecutions < 1000)
                    continue;
                ++hot;
                converged += rec.sampler.converged();
            }

            frac_sum += prof.fractionProfiled();
            err_sum += cmp.meanAbsInvTopDelta;
            transfer_sum += cmp.topValueTransferInvariant;
            conv_sum += hot ? static_cast<double>(converged) /
                                  static_cast<double>(hot)
                            : 0.0;
            ++n;
        }
        table.row()
            .cell(config.name)
            .percent(frac_sum / n, 2)
            .percent(err_sum / n, 2)
            .percent(transfer_sum / n)
            .percent(conv_sum / n);
    }

    table.print(std::cout,
                "E7 (MICRO Tables 4-5): convergent sampling sweep — "
                "fraction of executions profiled vs accuracy "
                "(suite averages, all writes, train inputs)");
    return 0;
}
