/**
 * @file
 * E5 — thesis section III.D bucket graphs: the execution-weighted
 * distribution of per-instruction invariance, in ten 10%-wide buckets,
 * for loads and for all register-writing instructions.
 *
 * Paper shape: strongly bimodal — big masses in the [0,10) and
 * [90,100] buckets with a thin middle; loads skew further right than
 * all instructions.
 */

#include <iostream>

#include "bench/common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace
{

vp::UnitHistogram
distribution(bench::Target target)
{
    vp::UnitHistogram hist(10);
    for (const auto *w : workloads::allWorkloads()) {
        const auto run = bench::profileWorkload(*w, "train", target);
        for (const auto &[pc, s] : run.snapshot.entities) {
            if (s.totalExecutions == 0)
                continue;
            hist.add(s.invTop,
                     static_cast<double>(s.totalExecutions));
        }
    }
    return hist;
}

std::string
bar(double fraction)
{
    const int width = static_cast<int>(fraction * 50 + 0.5);
    return std::string(static_cast<std::size_t>(width), '#');
}

} // namespace

int
main()
{
    bench::StatsSession stats_session("fig_invariance_distribution");
    const auto loads = distribution(bench::Target::Loads);
    const auto all = distribution(bench::Target::AllWrites);

    vp::TextTable table({"InvTop bucket", "loads%", "all%",
                         "loads histogram"});
    for (std::size_t i = 0; i < loads.numBuckets(); ++i) {
        table.row()
            .cell(loads.bucketLabel(i))
            .percent(loads.bucketFraction(i))
            .percent(all.bucketFraction(i))
            .cell(bar(loads.bucketFraction(i)));
    }
    table.print(std::cout,
                "E5 (Fig. III.D): execution-weighted distribution of "
                "per-instruction Inv-Top, train inputs");
    return 0;
}
