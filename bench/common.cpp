#include "bench/common.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace bench
{

vpsim::CpuConfig
cpuConfig()
{
    return vpsim::CpuConfig{16u << 20, 200'000'000};
}

ProfiledRun
profileWorkload(const workloads::Workload &w, const std::string &dataset,
                Target target, const core::InstProfilerConfig &cfg)
{
    const vpsim::Program &prog = w.program();
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, cpuConfig());
    core::InstructionProfiler prof(img, cfg);
    if (target == Target::Loads)
        prof.profileLoads(mgr);
    else
        prof.profileAllWrites(mgr);
    mgr.attach(cpu);

    ProfiledRun out;
    out.run = workloads::runToCompletion(cpu, w, dataset);
    out.snapshot = core::ProfileSnapshot::fromInstructionProfiler(prof);
    out.fractionProfiled = prof.fractionProfiled();
    out.invTop = prof.weightedMetric(&core::ValueProfile::invTop);
    out.invAll = prof.weightedMetric(&core::ValueProfile::invAll);
    out.lvp = prof.weightedMetric(&core::ValueProfile::lvp);
    out.zeroFraction =
        prof.weightedMetric(&core::ValueProfile::zeroFraction);
    double distinct_sum = 0.0;
    std::size_t executed = 0;
    for (const auto &rec : prof.records()) {
        if (rec.totalExecutions == 0)
            continue;
        distinct_sum += static_cast<double>(rec.profile.distinct());
        ++executed;
    }
    out.meanDistinct = executed ? distinct_sum / executed : 0.0;
    out.staticInsts = executed;
    return out;
}

double
OracleProfiler::PcStats::invTop() const
{
    if (total == 0)
        return 0.0;
    std::uint64_t best = 0;
    for (const auto &[v, c] : counts)
        best = std::max(best, c);
    return static_cast<double>(best) / static_cast<double>(total);
}

std::uint64_t
OracleProfiler::PcStats::topValue() const
{
    std::uint64_t best_v = 0, best_c = 0;
    for (const auto &[v, c] : counts) {
        if (c > best_c || (c == best_c && v < best_v)) {
            best_c = c;
            best_v = v;
        }
    }
    return best_v;
}

double
invTopErrorVsOracle(const core::ProfileSnapshot &snap,
                    const OracleProfiler &oracle)
{
    double num = 0.0, den = 0.0;
    for (const auto &[pc, exact] : oracle.all()) {
        auto it = snap.entities.find(pc);
        if (it == snap.entities.end())
            continue;
        const auto w = static_cast<double>(exact.total);
        num += w * std::abs(it->second.invTop - exact.invTop());
        den += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

double
topValueAgreementVsOracle(const core::ProfileSnapshot &snap,
                          const OracleProfiler &oracle)
{
    double num = 0.0, den = 0.0;
    for (const auto &[pc, exact] : oracle.all()) {
        auto it = snap.entities.find(pc);
        if (it == snap.entities.end())
            continue;
        const auto w = static_cast<double>(exact.total);
        den += w;
        if (!it->second.topValues.empty() &&
            it->second.topValue() == exact.topValue())
            num += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace bench
