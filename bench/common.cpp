#include "bench/common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/thread_pool.hpp"

namespace bench
{

vpsim::CpuConfig
cpuConfig()
{
    return vpsim::CpuConfig{16u << 20, 200'000'000};
}

namespace
{

workloads::ProfileJob
makeJob(const workloads::Workload &w, const std::string &dataset,
        Target target, const core::InstProfilerConfig &cfg)
{
    workloads::ProfileJob job;
    job.workload = &w;
    job.dataset = dataset;
    job.loadsOnly = target == Target::Loads;
    job.config = cfg;
    job.cpu = cpuConfig();
    return job;
}

ProfiledRun
fromJobResult(workloads::ProfileJobResult &&res)
{
    ProfiledRun out;
    out.snapshot = std::move(res.snapshot);
    out.run = res.run;
    out.fractionProfiled = res.fractionProfiled;
    out.invTop = res.invTop;
    out.invAll = res.invAll;
    out.lvp = res.lvp;
    out.zeroFraction = res.zeroFraction;
    out.meanDistinct = res.meanDistinct;
    out.staticInsts = res.staticInsts;
    return out;
}

} // namespace

ProfiledRun
profileWorkload(const workloads::Workload &w, const std::string &dataset,
                Target target, const core::InstProfilerConfig &cfg)
{
    return fromJobResult(
        workloads::ParallelRunner::runOne(makeJob(w, dataset, target,
                                                  cfg)));
}

std::vector<ProfiledRun>
profileSuite(const std::string &dataset, Target target,
             const core::InstProfilerConfig &cfg, unsigned jobs)
{
    std::vector<workloads::ProfileJob> batch;
    for (const auto *w : workloads::allWorkloads())
        batch.push_back(makeJob(*w, dataset, target, cfg));
    workloads::ParallelRunner runner(jobs);
    auto results = runner.run(batch);
    std::vector<ProfiledRun> out;
    out.reserve(results.size());
    for (auto &res : results)
        out.push_back(fromJobResult(std::move(res)));
    return out;
}

unsigned
benchJobs()
{
    const char *env = std::getenv("VP_BENCH_JOBS");
    if (!env)
        return vp::ThreadPool::hardwareThreads();
    const std::string s = env;
    if (s == "auto")
        return vp::ThreadPool::hardwareThreads();
    char *end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        vp_fatal("VP_BENCH_JOBS: '%s' is not a job count (use a "
                 "positive integer or 'auto')",
                 s.c_str());
    if (v <= 0)
        vp_fatal("VP_BENCH_JOBS must be a positive integer (got %s); "
                 "use 'auto' for one worker per hardware thread",
                 s.c_str());
    return static_cast<unsigned>(v);
}

StatsSession::StatsSession(std::string name)
{
    const char *env = std::getenv("VP_STATS_SIDECAR");
    if (env && std::string(env) == "0")
        return; // overhead-measurement mode: no collection at all
    std::string dir = env ? env : "";
    if (!dir.empty() && dir.back() != '/')
        dir += '/';
    sidecarPath = dir + std::move(name) + ".stats.json";
    vp::stats::setEnabled(true);
}

StatsSession::~StatsSession()
{
    if (sidecarPath.empty())
        return;
    vp::stats::setEnabled(false);
    std::ofstream out(sidecarPath);
    if (!out) {
        vp_warn("cannot write stats sidecar '%s'",
                sidecarPath.c_str());
        return;
    }
    vp::stats::global().writeJson(out);
}

vp::check::Generated
syntheticProgram(std::uint64_t seed)
{
    vp::check::GenConfig cfg;
    cfg.calls = 400;
    cfg.maxProcs = 4;
    cfg.maxLoopTrip = 8;
    return vp::check::generate(seed, cfg);
}

double
invTopErrorVsOracle(const core::ProfileSnapshot &snap,
                    const OracleProfiler &oracle)
{
    double num = 0.0, den = 0.0;
    for (const auto &[pc, exact] : oracle.all()) {
        auto it = snap.entities.find(pc);
        if (it == snap.entities.end())
            continue;
        const auto w = static_cast<double>(exact.total);
        num += w * std::abs(it->second.invTop - exact.invTop());
        den += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

double
topValueAgreementVsOracle(const core::ProfileSnapshot &snap,
                          const OracleProfiler &oracle)
{
    double num = 0.0, den = 0.0;
    for (const auto &[pc, exact] : oracle.all()) {
        auto it = snap.entities.find(pc);
        if (it == snap.entities.end())
            continue;
        const auto w = static_cast<double>(exact.total);
        den += w;
        if (!it->second.topValues.empty() &&
            it->second.topValue() == exact.topValue())
            num += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace bench
