/**
 * @file
 * E20 — closing the PGO loop: dynamic-instruction speedup of the
 * online adaptive specialization engine (src/adapt) over plain
 * interpretation, on workloads whose hot procedure takes a
 * semi-invariant argument.
 *
 * Three guest shapes, all built around a hot kernel called tens of
 * thousands of times with a config word passed in a0:
 *
 *   checksum_gate  — the kernel re-validates the config through a long
 *                    arithmetic chain before a never-taken slow path;
 *                    with a0 bound the whole chain folds and dies.
 *   dispatch_chain — a switch-style compare ladder picks one of eight
 *                    arms from the config; the bound clone keeps the
 *                    ladder's one surviving arm.
 *   phase_shift    — checksum_gate whose config flips mid-run: the
 *                    engine must deopt on the guard-miss window,
 *                    re-profile, and re-specialize for the new phase.
 *
 * Both legs of each row run the same guest to completion and must
 * print identical output — the engine's transparency contract — and
 * the retired-instruction counts are deterministic, so the committed
 * baseline (BENCH_adaptive.json) gates noise-free in CI
 * (tools/bench_compare.py, --smoke in tools/ci.sh).
 *
 * Usage: table_adaptive [--out FILE] [--smoke]
 *   --out FILE  where the JSON lands (default BENCH_adaptive.json)
 *   --smoke     10x fewer kernel calls — the CI smoke shape
 */

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adapt/engine.hpp"
#include "bench/common.hpp"
#include "instrument/image.hpp"
#include "instrument/manager.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

namespace
{

/**
 * The shared main loop: call kernel(config, i) `calls` times,
 * accumulating its return value into a printed checksum. `switch_at`
 * past the trip count means the config word never changes; otherwise
 * iteration `switch_at` rewrites it (the phase shift).
 */
std::string
mainLoop(std::uint64_t calls, std::uint64_t config,
         std::uint64_t switch_at, std::uint64_t config2)
{
    return vp::format(R"(
    .data
config: .word 0

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    li   s0, 0                 # i
    li   s1, %llu              # calls
    li   s4, %llu              # phase-switch iteration
    la   s2, config
    li   s3, 0                 # checksum accumulator
    li   t0, %llu
    st   t0, 0(s2)
loop:
    bge  s0, s1, done
    bne  s0, s4, no_switch
    li   t0, %llu              # second-phase config
    st   t0, 0(s2)
no_switch:
    ld   a0, 0(s2)             # the semi-invariant argument
    mov  a1, s0
    call kernel
    add  s3, s3, a0
    addi s0, s0, 1
    jmp  loop
done:
    mov  a0, s3
    syscall puti
    li   a0, 0
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp
)",
                      static_cast<unsigned long long>(calls),
                      static_cast<unsigned long long>(switch_at),
                      static_cast<unsigned long long>(config),
                      static_cast<unsigned long long>(config2));
}

/**
 * Kernel that re-derives the config checksum two ways and bails to a
 * (never-taken) slow path if they disagree. The two routes agree for
 * every a0, so the guest always takes the fast path; under a bound a0
 * both chains fold to the same constant, the branch folds, the slow
 * path becomes unreachable, and the chain temporaries die at the
 * payload's redefinitions — the clone is the payload plus the guard.
 */
const char *const checksumKernel = R"(
    .proc kernel args=2
kernel:
    # route one: mixed multiply/shift/xor chain over the config
    mul  t0, a0, a0
    xori t1, t0, 23130
    srli t2, t1, 3
    add  t0, t1, t2
    muli t1, t0, 17
    xor  t2, t1, a0
    slli t3, t2, 2
    add  t0, t3, t1
    srli t1, t0, 5
    xor  t2, t1, t3
    muli t3, t2, 3
    add  t4, t3, t0
    # route two: the same value via distributed multiplies
    muli t5, a0, 3
    muli t6, a0, 5
    add  t5, t5, t6
    muli t6, a0, 8
    sub  t5, t5, t6        # == 0 for every a0
    add  t5, t5, t4        # == route one
    bne  t4, t5, slow
    # payload: real per-call work on the iteration index; redefines
    # every chain temporary, so the folded chain is dead in the clone
    mul  t0, a1, a1
    xori t1, a1, 51
    add  t2, t0, t1
    andi t3, t2, 255
    srli t4, t2, 2
    add  t5, t3, t4
    xor  t6, t5, a1
    add  a0, t6, a0
    ret
slow:
    # recovery path for a corrupt config: never reached (the two
    # routes agree by construction), unreachable in the bound clone
    li   t0, 0
    muli t1, a0, 99
    add  t0, t0, t1
    xori t0, t0, 4095
    mov  a0, t0
    ret
    .endp
)";

/**
 * Kernel that walks a compare ladder on the config to pick one of
 * eight arithmetic arms. Under a bound a0 the ladder folds to a
 * direct jump and the seven dead arms disappear.
 */
const char *const dispatchKernel = R"(
    .proc kernel args=2
kernel:
    andi t9, a0, 7
    seqi t0, t9, 0
    bnez t0, arm0
    seqi t0, t9, 1
    bnez t0, arm1
    seqi t0, t9, 2
    bnez t0, arm2
    seqi t0, t9, 3
    bnez t0, arm3
    seqi t0, t9, 4
    bnez t0, arm4
    seqi t0, t9, 5
    bnez t0, arm5
    seqi t0, t9, 6
    bnez t0, arm6
arm7:
    muli t1, a1, 7
    xori t1, t1, 77
    add  a0, t1, a0
    ret
arm0:
    addi t1, a1, 11
    slli t1, t1, 1
    add  a0, t1, a0
    ret
arm1:
    muli t1, a1, 3
    srli t1, t1, 1
    add  a0, t1, a0
    ret
arm2:
    xori t1, a1, 29
    muli t1, t1, 5
    add  a0, t1, a0
    ret
arm3:
    andi t1, a1, 63
    muli t1, t1, 9
    add  a0, t1, a0
    ret
arm4:
    srli t1, a1, 2
    xori t1, t1, 13
    add  a0, t1, a0
    ret
arm5:
    muli t1, a1, 11
    andi t1, t1, 127
    add  a0, t1, a0
    ret
arm6:
    slli t1, a1, 3
    sub  t1, t1, a1
    add  a0, t1, a0
    ret
    .endp
)";

/** Engine shape for the bench: converge within ~200 calls so the
 *  adaptation latency is a vanishing fraction at both scales (the
 *  smoke run must measure the same steady state the full run does). */
adapt::AdaptConfig
benchAdaptConfig()
{
    adapt::AdaptConfig cfg;
    cfg.invariance = 0.90;
    cfg.minCalls = 32;
    cfg.deoptWindow = 32;
    cfg.deoptMissRate = 0.5;
    cfg.blacklistAfter = 4;
    cfg.sampler.burstSize = 16;
    cfg.sampler.initialSkip = 16;
    cfg.sampler.convergeRounds = 2;
    cfg.sampler.maxSkip = 256;
    return cfg;
}

struct Row
{
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t plainInsts = 0;
    std::uint64_t adaptiveInsts = 0;
    std::uint64_t installs = 0;
    std::uint64_t respecs = 0;
    std::uint64_t deopts = 0;
    std::uint64_t guardHits = 0;
    std::uint64_t guardMisses = 0;

    double
    speedup() const
    {
        return adaptiveInsts
                   ? static_cast<double>(plainInsts) /
                         static_cast<double>(adaptiveInsts)
                   : 0.0;
    }
};

Row
runShape(const std::string &name, const std::string &source,
         std::uint64_t calls, bool expect_respec)
{
    Row row;
    row.name = name;
    row.calls = calls;

    const vpsim::Program plain_prog = vpsim::assemble(source);
    vpsim::Cpu plain_cpu(plain_prog, bench::cpuConfig());
    const vpsim::RunResult plain = plain_cpu.run();
    if (!plain.exited())
        vp_fatal("%s: plain run did not exit (reason %d)",
                 name.c_str(), static_cast<int>(plain.reason));
    row.plainInsts = plain.dynamicInsts;

    vpsim::Program aprog = vpsim::assemble(source);
    instr::Image image(aprog);
    instr::InstrumentManager manager(image);
    vpsim::Cpu acpu(aprog, bench::cpuConfig());
    adapt::AdaptiveEngine engine(aprog, manager, acpu,
                                 benchAdaptConfig());
    manager.attach(acpu);
    const vpsim::RunResult adaptive = acpu.run();
    if (!adaptive.exited())
        vp_fatal("%s: adaptive run did not exit (reason %d)",
                 name.c_str(), static_cast<int>(adaptive.reason));
    row.adaptiveInsts = adaptive.dynamicInsts;
    row.installs = engine.installs();
    row.respecs = engine.respecializations();
    row.deopts = engine.deopts();
    row.guardHits = engine.guardHits();
    row.guardMisses = engine.guardMisses();

    // Transparency contract: the engine may never change what the
    // guest computes, only how many instructions it retires.
    if (plain_cpu.output() != acpu.output() ||
        plain.exitCode != adaptive.exitCode)
        vp_fatal("%s: adaptive output diverged from plain",
                 name.c_str());
    if (row.installs == 0)
        vp_fatal("%s: engine never specialized", name.c_str());
    if (expect_respec && row.respecs == 0)
        vp_fatal("%s: phase shift never re-specialized", name.c_str());
    return row;
}

double
geomeanSpeedup(const std::vector<Row> &rows)
{
    double log_sum = 0.0;
    for (const auto &r : rows)
        log_sum += std::log(r.speedup());
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

void
writeJson(const std::string &path, const std::vector<Row> &rows,
          bool smoke)
{
    std::ofstream out(path);
    if (!out)
        vp_fatal("cannot write '%s'", path.c_str());
    char buf[512];
    out << "{\n"
        << "  \"bench\": \"table_adaptive\",\n"
        << "  \"version\": 1,\n"
        << "  \"unit\": \"dynamic_instruction_speedup\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"name\": \"%s\", \"calls\": %" PRIu64
            ", \"plain_insts\": %" PRIu64
            ", \"adaptive_insts\": %" PRIu64 ", \"speedup\": %.3f"
            ", \"installs\": %" PRIu64 ", \"respecializations\": %" PRIu64
            ", \"deopts\": %" PRIu64 ", \"guard_hits\": %" PRIu64
            ", \"guard_misses\": %" PRIu64 "}%s\n",
            r.name.c_str(), r.calls, r.plainInsts, r.adaptiveInsts,
            r.speedup(), r.installs, r.respecs, r.deopts, r.guardHits,
            r.guardMisses, i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    double min_speedup = 1e300;
    for (const auto &r : rows)
        min_speedup = std::min(min_speedup, r.speedup());
    std::snprintf(buf, sizeof buf,
                  "  ],\n"
                  "  \"suite\": {\"geomean_speedup\": %.3f, "
                  "\"min_speedup\": %.3f}\n"
                  "}\n",
                  geomeanSpeedup(rows), min_speedup);
    out << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_adaptive.json";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (a == "--smoke") {
            smoke = true;
        } else {
            std::fprintf(stderr, "usage: table_adaptive [--out FILE] "
                                 "[--smoke]\n");
            return 2;
        }
    }
    bench::StatsSession stats_session("table_adaptive");

    const std::uint64_t calls = smoke ? 4'000 : 40'000;
    // checksum_gate / dispatch_chain never switch phase (switch_at
    // past the trip count); phase_shift flips the config halfway.
    const std::uint64_t never = calls + 1;

    std::printf("E20: online adaptive specialization "
                "(dynamic-instruction speedup, %s scale)\n",
                smoke ? "smoke" : "full");

    std::vector<Row> rows;
    rows.push_back(runShape(
        "checksum_gate",
        mainLoop(calls, 0x2b5d, never, 0x2b5d) + checksumKernel,
        calls, false));
    rows.push_back(runShape(
        "dispatch_chain",
        mainLoop(calls, 0x1267, never, 0x1267) + dispatchKernel,
        calls, false));
    rows.push_back(runShape(
        "phase_shift",
        mainLoop(calls, 0x2b5d, calls / 2, 0x77e1) + checksumKernel,
        calls, true));

    vp::TextTable table({"workload", "calls", "plain insts(M)",
                         "adaptive insts(M)", "speedup", "installs",
                         "respecs", "deopts", "guard hit/total"});
    for (const auto &r : rows) {
        table.row()
            .cell(r.name)
            .cell(r.calls)
            .cell(static_cast<double>(r.plainInsts) / 1e6, 3)
            .cell(static_cast<double>(r.adaptiveInsts) / 1e6, 3)
            .cell(r.speedup(), 2)
            .cell(r.installs)
            .cell(r.respecs)
            .cell(r.deopts)
            .cell(vp::format("%llu/%llu",
                             static_cast<unsigned long long>(
                                 r.guardHits),
                             static_cast<unsigned long long>(
                                 r.guardHits + r.guardMisses)));
    }
    table.print(std::cout);
    std::printf("geomean speedup: %.2fx\n", geomeanSpeedup(rows));

    writeJson(out_path, rows, smoke);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
