/**
 * @file
 * E2 — thesis Table V.1 / MICRO-30 Table 2: value profile of load
 * instructions per benchmark. Columns follow the thesis metrics
 * (section III.C): LVP, Inv-Top, Inv-All, mean Diff per load, %Zero.
 *
 * Paper shape to reproduce: loads show substantial invariance (the
 * paper reports ~48% Inv-Top on SPEC95 int), a large zero fraction,
 * and LVP exceeding Inv-Top (value locality > invariance).
 */

#include <iostream>

#include "bench/common.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_load_invariance");
    vp::TextTable table({"program", "loads(M)", "LVP%", "InvTop%",
                         "InvAll%", "Diff/load", "Zero%"});

    double sum_lvp = 0, sum_top = 0, sum_all = 0, sum_zero = 0;
    int n = 0;
    for (const auto *w : workloads::allWorkloads()) {
        const auto run = bench::profileWorkload(*w, "train",
                                                bench::Target::Loads);
        table.row()
            .cell(w->name())
            .cell(static_cast<double>(run.run.dynamicLoads) / 1e6, 2)
            .percent(run.lvp)
            .percent(run.invTop)
            .percent(run.invAll)
            .cell(run.meanDistinct, 1)
            .percent(run.zeroFraction);
        sum_lvp += run.lvp;
        sum_top += run.invTop;
        sum_all += run.invAll;
        sum_zero += run.zeroFraction;
        ++n;
    }
    table.row()
        .cell("average")
        .cell("")
        .percent(sum_lvp / n)
        .percent(sum_top / n)
        .percent(sum_all / n)
        .cell("")
        .percent(sum_zero / n);

    table.print(std::cout,
                "E2 (Table V.1): load-value profile per benchmark, "
                "train inputs, TNV N=8 clear=2048");
    return 0;
}
