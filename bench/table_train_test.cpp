/**
 * @file
 * E6 — thesis Table V.5: do value profiles transfer across inputs?
 * For each benchmark, the load-value metrics on the train and test
 * data sets side by side, plus cross-run comparison statistics
 * (per-instruction Inv-Top correlation and top-value transfer of
 * semi-invariant instructions).
 *
 * Paper shape (confirming Wall [38]): metrics are very similar across
 * data sets and the profiles correlate highly.
 */

#include <iostream>

#include "bench/common.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_train_test");
    vp::TextTable table({"program", "set", "LVP%", "InvTop%", "InvAll%",
                         "Diff/load", "corr", "transfer%"});

    double sum_corr = 0, sum_transfer = 0;
    int n = 0;
    for (const auto *w : workloads::allWorkloads()) {
        const auto train =
            bench::profileWorkload(*w, "train", bench::Target::Loads);
        const auto test =
            bench::profileWorkload(*w, "test", bench::Target::Loads);
        const auto cmp =
            core::compareSnapshots(train.snapshot, test.snapshot);

        table.row()
            .cell(w->name())
            .cell("train")
            .percent(train.lvp)
            .percent(train.invTop)
            .percent(train.invAll)
            .cell(train.meanDistinct, 1)
            .cell(cmp.invTopCorrelation, 3)
            .percent(cmp.topValueTransferInvariant);
        table.row()
            .cell("")
            .cell("test")
            .percent(test.lvp)
            .percent(test.invTop)
            .percent(test.invAll)
            .cell(test.meanDistinct, 1);

        sum_corr += cmp.invTopCorrelation;
        sum_transfer += cmp.topValueTransferInvariant;
        ++n;
    }
    table.row()
        .cell("average")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .cell("")
        .cell(sum_corr / n, 3)
        .percent(sum_transfer / n);

    table.print(std::cout,
                "E6 (Table V.5): load-value profiles across train and "
                "test inputs; corr = per-instruction Inv-Top "
                "correlation, transfer = semi-invariant top-value "
                "transfer train->test");
    return 0;
}
