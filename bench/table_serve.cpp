/**
 * @file
 * E19 — query-plane interference on the ingest path.
 *
 * The acceptance bar for vpd's HTTP query & metrics plane is that
 * observability must not tax the thing being observed: with a large
 * fleet of concurrent HTTP clients hammering /top and parking on
 * /watch against a live-ingesting daemon, the ingest ack latency p99
 * may regress only marginally, and the aggregate must stay
 * byte-identical to the serial oracle merge.
 *
 * The bench runs the same ingest workload twice against an in-process
 * daemon — once bare (baseline) and once under HTTP load — measuring
 * client-observed per-delta ack round trips. It reports
 *
 *   ingest_p99_us_baseline  ack p99 with no HTTP clients
 *   ingest_p99_us           ack p99 under HTTP load
 *   ingest_p99_ratio        loaded / baseline  (the gated cell —
 *                           self-normalizing, so it compares across
 *                           machines and CI load)
 *   http_rps                query responses served per second
 *
 * and writes BENCH_serve.json for tools/bench_compare.py. Both phases
 * assert byte-identity of the served aggregate against a serial fold.
 *
 * Usage: table_serve [--out FILE] [--clients N] [--smoke]
 *   --out FILE   where the JSON lands (default BENCH_serve.json)
 *   --clients N  concurrent HTTP connections (default 1000)
 *   --smoke      32 clients, short ingest — the sanitizer-leg smoke
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <poll.h>
#include <sstream>
#include <string>
#include <sys/resource.h>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "support/logging.hpp"
#include "support/socket.hpp"

namespace
{

using clock_type = std::chrono::steady_clock;

struct Params
{
    unsigned producers = 4;
    unsigned deltasPerProducer = 200;
    unsigned entitiesPerDelta = 50;
    std::size_t httpClients = 1000;
    int loadThreads = 4;
    /** Ingest repetitions per phase; the best p99 is kept, filtering
     *  scheduler noise (decisive on small CI boxes where producers,
     *  load drivers, and the daemon timeshare the cores). */
    unsigned reps = 3;
};

/** Deterministic synthetic summary (same scheme the serve tests use). */
core::EntitySummary
makeSummary(std::uint64_t salt)
{
    core::EntitySummary s;
    s.totalExecutions = 100 + salt * 13;
    s.profiledExecutions = 90 + salt * 11;
    s.invTop = 1.0 / static_cast<double>(salt % 9 + 2);
    s.invAll = 0.25;
    s.lvp = 0.5;
    s.distinct = 1 + salt % 5;
    s.topValues = {{salt * 17 + 1, 60 + salt}};
    return s;
}

/** Producer k's delta d: entity keys overlap across producers and
 *  deltas so the daemon genuinely merges. */
core::ProfileSnapshot
makeDelta(unsigned k, unsigned d, const Params &p)
{
    core::ProfileSnapshot snap;
    for (unsigned e = 0; e < p.entitiesPerDelta; ++e) {
        const std::uint64_t key = 1000 + (d % 16) * 64 + e;
        snap.entities[key] = makeSummary(k * 7 + d * 3 + e);
    }
    return snap;
}

core::ProfileSnapshot
serialReference(const Params &p)
{
    // Every rep streams under fresh producer ids (rep-major), so the
    // canonical fold covers reps × producers shards in that order.
    core::ProfileSnapshot reference;
    for (unsigned g = 0; g < p.reps * p.producers; ++g)
        for (unsigned d = 0; d < p.deltasPerProducer; ++d)
            reference.merge(makeDelta(g, d, p));
    return reference;
}

std::string
snapshotText(const core::ProfileSnapshot &snap)
{
    std::ostringstream os;
    snap.save(os);
    return os.str();
}

bool
sendAll(int fd, const std::uint8_t *data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        const long n =
            ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * One producer's ingest stream over a raw blocking wire client,
 * timing each delta's send-to-ack round trip. @return false when any
 * delta went unacknowledged.
 */
bool
runProducer(const std::string &addr, unsigned k, const Params &p,
            std::vector<double> &rtts_us)
{
    vp::net::Address parsed;
    std::string error;
    if (!vp::net::parseAddress(addr, parsed, error))
        vp_fatal("%s", error.c_str());
    const int fd = vp::net::connectTo(parsed, error);
    if (fd < 0)
        vp_fatal("%s", error.c_str());
    vp::net::FdGuard guard(fd);
    vp::serve::FrameReader reader;

    rtts_us.reserve(p.deltasPerProducer);
    for (unsigned d = 0; d < p.deltasPerProducer; ++d) {
        vp::serve::Delta delta;
        delta.producerId = k + 1;
        delta.seq = d + 1;
        delta.entities = makeDelta(k, d, p);
        const auto bytes = vp::serve::encodeDelta(delta);

        const auto t0 = clock_type::now();
        if (!sendAll(fd, bytes.data(), bytes.size()))
            return false;
        bool acked = false;
        while (!acked) {
            std::uint8_t buf[4096];
            const long n = ::recv(fd, buf, sizeof(buf), 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            reader.append(buf, static_cast<std::size_t>(n));
            vp::serve::Frame frame;
            std::string why;
            while (reader.next(frame, why) ==
                   vp::serve::DecodeStatus::Ok) {
                if (frame.type != vp::serve::MsgType::Ack)
                    return false;
                acked = true;
            }
        }
        rtts_us.push_back(
            std::chrono::duration<double, std::micro>(
                clock_type::now() - t0)
                .count());
    }
    return true;
}

/**
 * One driver thread's share of the HTTP fleet: `conns` keep-alive
 * connections multiplexed over poll(2), each cycling GET /top (every
 * eighth connection parks on GET /watch instead, so delta applies pay
 * the wakeup path too). Clients are paced like a scrape fleet — a
 * fixed think time between a response and the next request — rather
 * than closed-loop at line rate: the acceptance question is whether
 * 1000 concurrent dashboards perturb ingest, not whether a
 * single-threaded daemon survives a deliberate query flood. Counts
 * complete responses.
 */
constexpr auto kClientThinkTime = std::chrono::milliseconds(20);

void
runHttpLoad(const std::string &addr, std::size_t conns,
            std::size_t first_index, const std::atomic<bool> &stop,
            std::atomic<std::uint64_t> &responses,
            std::atomic<std::size_t> &connected)
{
    struct Client
    {
        vp::net::FdGuard fd;
        std::string in;
        bool requestOut = false;
        const char *target = nullptr;
        clock_type::time_point nextAt{}; ///< earliest next request
    };

    vp::net::Address parsed;
    std::string error;
    if (!vp::net::parseAddress(addr, parsed, error))
        vp_fatal("%s", error.c_str());

    std::vector<Client> clients(conns);
    for (std::size_t i = 0; i < conns; ++i) {
        const int fd = vp::net::connectTo(parsed, error);
        if (fd < 0)
            vp_fatal("http client connect: %s", error.c_str());
        if (!vp::net::setNonBlocking(fd, error))
            vp_fatal("%s", error.c_str());
        clients[i].fd.reset(fd);
        clients[i].target = (first_index + i) % 8 == 7
                                ? "GET /watch HTTP/1.1\r\n\r\n"
                                : "GET /top?n=20 HTTP/1.1\r\n\r\n";
    }
    connected.fetch_add(conns, std::memory_order_release);

    std::vector<pollfd> fds(conns);
    while (!stop.load(std::memory_order_relaxed)) {
        const auto now = clock_type::now();
        for (std::size_t i = 0; i < conns; ++i) {
            // A negative fd makes poll(2) skip the slot: clients in
            // their think-time window ask for nothing.
            const bool thinking =
                !clients[i].requestOut && now < clients[i].nextAt;
            fds[i].fd = thinking ? -1 : clients[i].fd.get();
            fds[i].events = static_cast<short>(
                clients[i].requestOut ? POLLIN : POLLOUT);
            fds[i].revents = 0;
        }
        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(conns), 5);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            vp_fatal("poll: %s", std::strerror(errno));
        }
        for (std::size_t i = 0; i < conns; ++i) {
            Client &c = clients[i];
            if (fds[i].revents == 0)
                continue;
            if (!c.requestOut) {
                // Issue the next request (short writes cannot happen
                // at these sizes with an empty socket buffer).
                if (!sendAll(c.fd.get(),
                             reinterpret_cast<const std::uint8_t *>(
                                 c.target),
                             std::strlen(c.target)))
                    vp_fatal("http client send failed");
                c.requestOut = true;
                continue;
            }
            char buf[8192];
            const long n =
                ::recv(c.fd.get(), buf, sizeof(buf), MSG_DONTWAIT);
            if (n < 0 &&
                (errno == EINTR || errno == EAGAIN ||
                 errno == EWOULDBLOCK))
                continue;
            if (n <= 0)
                vp_fatal("http server closed a keep-alive session");
            c.in.append(buf, static_cast<std::size_t>(n));
            // A complete response ends with a Content-Length-framed
            // body; cheap check: headers present and body complete.
            const auto head_end = c.in.find("\r\n\r\n");
            if (head_end == std::string::npos)
                continue;
            const auto cl = c.in.find("Content-Length: ");
            if (cl == std::string::npos || cl > head_end)
                continue;
            const std::size_t want =
                head_end + 4 +
                static_cast<std::size_t>(
                    std::atol(c.in.c_str() + cl + 16));
            if (c.in.size() < want)
                continue;
            c.in.erase(0, want);
            c.requestOut = false;
            c.nextAt = clock_type::now() + kClientThinkTime;
            responses.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

double
p99(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(samples.size() - 1));
    return samples[idx];
}

/** One full ingest phase; returns ack p99 in microseconds. */
double
ingestPhase(const std::string &ingest_addr, const Params &p)
{
    double best = 0.0;
    for (unsigned rep = 0; rep < p.reps; ++rep) {
        std::vector<std::vector<double>> rtts(p.producers);
        std::vector<std::thread> producers;
        std::atomic<unsigned> failures{0};
        for (unsigned k = 0; k < p.producers; ++k) {
            const unsigned g = rep * p.producers + k;
            producers.emplace_back([&, g, k] {
                if (!runProducer(ingest_addr, g, p, rtts[k]))
                    failures.fetch_add(1);
            });
        }
        for (auto &t : producers)
            t.join();
        if (failures.load() != 0)
            vp_fatal("%u producer(s) lost deltas", failures.load());
        std::vector<double> all;
        for (const auto &r : rtts)
            all.insert(all.end(), r.begin(), r.end());
        const double rep_p99 = p99(std::move(all));
        if (rep == 0 || rep_p99 < best)
            best = rep_p99;
    }
    return best;
}

void
raiseFdLimit(std::size_t want)
{
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0)
        return;
    if (lim.rlim_cur >= want + 512)
        return;
    lim.rlim_cur = std::min<rlim_t>(lim.rlim_max, want + 512);
    ::setrlimit(RLIMIT_NOFILE, &lim);
}

void
writeJson(const std::string &path, const Params &p, bool smoke,
          double baseline_us, double loaded_us, double ratio,
          double http_rps, std::uint64_t http_responses)
{
    std::ofstream out(path);
    if (!out)
        vp_fatal("cannot write '%s'", path.c_str());
    char buf[512];
    out << "{\n"
        << "  \"bench\": \"table_serve\",\n"
        << "  \"version\": 1,\n"
        << "  \"unit\": \"microseconds\",\n"
        << "  \"http_clients\": " << p.httpClients << ",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"workloads\": [\n";
    std::snprintf(
        buf, sizeof buf,
        "    {\"name\": \"ingest\", \"ingest_p99_us_baseline\": %.1f"
        ", \"ingest_p99_us\": %.1f, \"ingest_p99_ratio\": %.4f"
        ", \"http_rps\": %.0f, \"http_responses\": %llu}\n",
        baseline_us, loaded_us, ratio, http_rps,
        static_cast<unsigned long long>(http_responses));
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "  ],\n"
                  "  \"suite\": {\"geomean_ingest_p99_ratio\": %.4f}\n"
                  "}\n",
                  ratio);
    out << buf;
}

/** A daemon instance scoped to one phase. */
struct Daemon
{
    std::unique_ptr<vp::serve::VpdServer> server;
    std::thread loop;
    std::string ingest;
    std::string http;

    Daemon()
    {
        vp::serve::ServerConfig cfg;
        cfg.listenAddrs = {"127.0.0.1:0"};
        cfg.httpAddrs = {"127.0.0.1:0"};
        cfg.maxClients = 64;
        server = std::make_unique<vp::serve::VpdServer>(cfg);
        std::string error;
        if (!server->start(error))
            vp_fatal("%s", error.c_str());
        ingest = server->boundAddresses().front().str();
        http = server->boundHttpAddresses().front().str();
        loop = std::thread([this] {
            std::string run_error;
            if (!server->run(run_error))
                vp_fatal("vpd loop: %s", run_error.c_str());
        });
    }

    ~Daemon()
    {
        if (loop.joinable()) {
            server->requestStop();
            loop.join();
        }
    }

    void verifyAggregate(const std::string &want, const char *phase)
    {
        core::ProfileSnapshot served;
        std::string error;
        if (!vp::serve::requestSnapshot(ingest, served, error))
            vp_fatal("SNAPSHOT failed (%s): %s", phase,
                     error.c_str());
        if (snapshotText(served) != want)
            vp_fatal("aggregate diverged from the serial merge in "
                     "the %s phase",
                     phase);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_serve.json";
    Params p;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (a == "--clients" && i + 1 < argc) {
            p.httpClients =
                static_cast<std::size_t>(std::atol(argv[++i]));
            if (p.httpClients == 0)
                vp_fatal("--clients wants a positive integer");
        } else if (a == "--smoke") {
            smoke = true;
        } else {
            std::fprintf(stderr, "usage: table_serve [--out FILE] "
                                 "[--clients N] [--smoke]\n");
            return 2;
        }
    }
    if (smoke) {
        p.httpClients = std::min<std::size_t>(p.httpClients, 32);
        p.deltasPerProducer = 40;
        p.loadThreads = 2;
        p.reps = 2;
    }
    raiseFdLimit(p.httpClients);

    std::printf("E19: ingest ack latency vs HTTP query load "
                "(%zu clients)\n",
                p.httpClients);
    const std::string want = snapshotText(serialReference(p));

    // Phase 1: bare ingest, no HTTP clients.
    double baseline_us;
    {
        Daemon daemon;
        baseline_us = ingestPhase(daemon.ingest, p);
        daemon.verifyAggregate(want, "baseline");
    }

    // Phase 2: identical ingest under full HTTP query load.
    double loaded_us;
    double http_rps;
    std::uint64_t served_responses;
    {
        Daemon daemon;
        std::atomic<bool> stop{false};
        std::atomic<std::uint64_t> responses{0};
        std::atomic<std::size_t> connected{0};
        std::vector<std::thread> drivers;
        const std::size_t per =
            (p.httpClients +
             static_cast<std::size_t>(p.loadThreads) - 1) /
            static_cast<std::size_t>(p.loadThreads);
        for (int t = 0; t < p.loadThreads; ++t) {
            const std::size_t first =
                static_cast<std::size_t>(t) * per;
            if (first >= p.httpClients)
                break;
            const std::size_t mine =
                std::min(per, p.httpClients - first);
            drivers.emplace_back([&, first, mine] {
                runHttpLoad(daemon.http, mine, first, stop,
                            responses, connected);
            });
        }
        // The ratio only measures interference if the query load is
        // actually up while ingest runs: wait for every client to be
        // connected before the timed phase starts.
        while (connected.load(std::memory_order_acquire) <
               p.httpClients)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        // Clients start querying as soon as their own thread is up;
        // only responses inside the timed window count toward rps.
        responses.store(0);

        const auto t0 = clock_type::now();
        loaded_us = ingestPhase(daemon.ingest, p);
        const double secs =
            std::chrono::duration<double>(clock_type::now() - t0)
                .count();
        stop.store(true);
        for (auto &t : drivers)
            t.join();
        served_responses = responses.load();
        http_rps = secs > 0.0
                       ? static_cast<double>(served_responses) / secs
                       : 0.0;
        daemon.verifyAggregate(want, "loaded");
    }

    const double ratio =
        baseline_us > 0.0 ? loaded_us / baseline_us : 1.0;
    std::printf("  ack p99: %.1f us bare, %.1f us under load "
                "(ratio %.3f); %.0f http responses/sec\n",
                baseline_us, loaded_us, ratio, http_rps);
    writeJson(out_path, p, smoke, baseline_us, loaded_us, ratio,
              http_rps, served_responses);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
