/**
 * @file
 * E14 (extension; thesis future work) — stride profiling. The thesis
 * observes that "a load instruction or an add instruction is likely
 * to increment by a constant amount, hence for instructions like that
 * we would use some sort of a stride predictor". This experiment
 * profiles successive-value deltas alongside values and classifies
 * each instruction class's executions into:
 *
 *   value-invariant  (Inv-Top >= 80%),
 *   stride-only      (stride Inv-Top >= 80% with nonzero top stride,
 *                     but not value-invariant),
 *   variant          (neither).
 *
 * This is the profile a compiler needs to tell the hardware which
 * predictor (LVP vs stride) to use per instruction — connecting E2's
 * invariance numbers with E11's predictor ranking.
 */

#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "core/instruction_profiler.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_strides");
    struct Agg
    {
        double weight = 0;
        double valueInv = 0;
        double strideOnly = 0;
    };
    std::map<vpsim::InstClass, Agg> agg;
    Agg total;

    for (const auto *w : workloads::allWorkloads()) {
        const vpsim::Program &prog = w->program();
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());

        core::InstProfilerConfig cfg;
        cfg.profile.trackStrides = true;
        core::InstructionProfiler prof(img, cfg);
        prof.profileAllWrites(mgr);
        mgr.attach(cpu);
        workloads::runToCompletion(cpu, *w, "train");

        for (const auto &rec : prof.records()) {
            if (rec.totalExecutions == 0)
                continue;
            const auto weight =
                static_cast<double>(rec.totalExecutions);
            const bool value_inv = rec.profile.invTop() >= 0.8;
            const bool stride_only =
                !value_inv && rec.profile.strideInvTop() >= 0.8 &&
                rec.profile.topStride() != 0;
            const auto cls = vpsim::opcodeClass(prog.code[rec.pc].op);
            for (Agg *a : {&agg[cls], &total}) {
                a->weight += weight;
                a->valueInv += value_inv ? weight : 0;
                a->strideOnly += stride_only ? weight : 0;
            }
        }
    }

    vp::TextTable table({"class", "execs(M)", "valueInv%",
                         "strideOnly%", "variant%"});
    auto add_row = [&table](const std::string &name, const Agg &a) {
        if (a.weight == 0)
            return;
        const double vi = a.valueInv / a.weight;
        const double so = a.strideOnly / a.weight;
        table.row()
            .cell(name)
            .cell(a.weight / 1e6, 2)
            .percent(vi)
            .percent(so)
            .percent(1.0 - vi - so);
    };
    for (const auto &[cls, a] : agg)
        add_row(vpsim::instClassName(cls), a);
    add_row("total", total);

    table.print(std::cout,
                "E14 (extension): value-invariant vs stride-"
                "predictable executions per instruction class "
                "(thresholds 80%, train inputs)");
    return 0;
}
