/**
 * @file
 * E1 — thesis Table III.A.1: the benchmark suite, its data sets and
 * dynamic instruction counts; plus the thesis Table IV.1 flavour of
 * basic-block concentration (how few static instructions cover 90% and
 * 99% of dynamic execution), which motivates profiling hot code only.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace
{

/** Static instructions needed to cover `quantile` of execution. */
std::size_t
staticCover(const std::vector<std::uint64_t> &exec_counts,
            double quantile)
{
    std::vector<std::uint64_t> sorted = exec_counts;
    std::sort(sorted.rbegin(), sorted.rend());
    std::uint64_t total = 0;
    for (auto c : sorted)
        total += c;
    const double want = quantile * static_cast<double>(total);
    double have = 0;
    std::size_t n = 0;
    for (auto c : sorted) {
        if (have >= want)
            break;
        have += static_cast<double>(c);
        ++n;
    }
    return n;
}

struct ExecCounter : instr::Tool
{
    std::vector<std::uint64_t> counts;

    explicit ExecCounter(std::size_t n) : counts(n, 0) {}

    void
    onInstValue(std::uint32_t pc, const vpsim::Inst &,
                std::uint64_t) override
    {
        ++counts[pc];
    }

    void
    onInstNoValue(std::uint32_t pc, const vpsim::Inst &) override
    {
        ++counts[pc];
    }
};

/** One (workload, dataset) measurement — an independent shard. */
struct Job
{
    const workloads::Workload *workload = nullptr;
    std::string dataset;
    vpsim::RunResult run;
    std::vector<std::uint64_t> counts;
};

} // namespace

int
main()
{
    bench::StatsSession stats_session("table_benchmarks");
    vp::TextTable table({"program", "description", "dataset",
                         "insts(M)", "loads(M)", "stores(M)",
                         "static", "cover90", "cover99"});

    std::vector<Job> jobs;
    for (const auto *w : workloads::allWorkloads()) {
        w->program(); // pre-assemble on the main thread
        for (const auto &dataset : w->datasets())
            jobs.push_back({w, dataset, {}, {}});
    }

    // Fan the measurement runs out across cores; each job owns its
    // whole Cpu/manager/counter shard. Rows are emitted afterwards in
    // job order, so the table matches the sequential driver's exactly.
    vp::ThreadPool::parallelFor(
        bench::benchJobs(), jobs.size(), [&](std::size_t i) {
            Job &job = jobs[i];
            const vpsim::Program &prog = job.workload->program();
            instr::Image img(prog);
            instr::InstrumentManager mgr(img);
            vpsim::Cpu cpu(prog, bench::cpuConfig());
            ExecCounter counter(prog.numInsts());
            std::vector<std::uint32_t> all_pcs;
            for (std::uint32_t pc = 0; pc < prog.numInsts(); ++pc)
                all_pcs.push_back(pc);
            mgr.instrumentInsts(all_pcs, &counter);
            mgr.attach(cpu);
            job.run = workloads::runToCompletion(cpu, *job.workload,
                                                 job.dataset);
            job.counts = std::move(counter.counts);
        });

    for (const auto &job : jobs) {
        const auto *w = job.workload;
        const auto &res = job.run;
        table.row()
            .cell(job.dataset == "train" ? w->name() : std::string(""))
            .cell(job.dataset == "train" ? w->description()
                                         : std::string(""))
            .cell(job.dataset)
            .cell(static_cast<double>(res.dynamicInsts) / 1e6, 2)
            .cell(static_cast<double>(res.dynamicLoads) / 1e6, 2)
            .cell(static_cast<double>(res.dynamicStores) / 1e6, 2)
            .cell(static_cast<std::uint64_t>(
                w->program().numInsts()))
            .cell(static_cast<std::uint64_t>(
                staticCover(job.counts, 0.90)))
            .cell(static_cast<std::uint64_t>(
                staticCover(job.counts, 0.99)));
    }

    table.print(std::cout,
                "E1 (Table III.A.1): benchmarks, data sets, dynamic "
                "counts, and static-instruction execution coverage");
    return 0;
}
