/**
 * @file
 * E4 — thesis Table V.3: invariance broken down by instruction class,
 * aggregated over the whole suite (execution weighted).
 *
 * Paper shape: loads and ALU ops differ markedly; multiplies and
 * shifts often show high invariance (constant operands), compares are
 * the most invariant (mostly 0/1 with one side dominant).
 */

#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "core/instruction_profiler.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_by_class");
    struct ClassAgg
    {
        double weight = 0;
        double invTop = 0, invAll = 0, lvp = 0, zero = 0;
    };
    std::map<vpsim::InstClass, ClassAgg> agg;

    for (const auto *w : workloads::allWorkloads()) {
        const vpsim::Program &prog = w->program();
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::InstructionProfiler prof(img);
        prof.profileAllWrites(mgr);
        mgr.attach(cpu);
        workloads::runToCompletion(cpu, *w, "train");

        for (const auto &rec : prof.records()) {
            if (rec.totalExecutions == 0)
                continue;
            const auto cls = vpsim::opcodeClass(prog.code[rec.pc].op);
            auto &a = agg[cls];
            const auto weight =
                static_cast<double>(rec.totalExecutions);
            a.weight += weight;
            a.invTop += weight * rec.profile.invTop();
            a.invAll += weight * rec.profile.invAll();
            a.lvp += weight * rec.profile.lvp();
            a.zero += weight * rec.profile.zeroFraction();
        }
    }

    vp::TextTable table({"class", "execs(M)", "LVP%", "InvTop%",
                         "InvAll%", "Zero%"});
    for (const auto &[cls, a] : agg) {
        if (a.weight == 0)
            continue;
        table.row()
            .cell(vpsim::instClassName(cls))
            .cell(a.weight / 1e6, 2)
            .percent(a.lvp / a.weight)
            .percent(a.invTop / a.weight)
            .percent(a.invAll / a.weight)
            .percent(a.zero / a.weight);
    }
    table.print(std::cout,
                "E4 (Table V.3): invariance by instruction class, "
                "all benchmarks, train inputs, execution weighted");
    return 0;
}
