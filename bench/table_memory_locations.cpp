/**
 * @file
 * E9 — thesis chapter on memory-location profiling: per benchmark, the
 * number of distinct written locations, execution-weighted invariance
 * of location contents, and zero fraction; plus the hottest locations
 * of one benchmark with their per-location metrics.
 *
 * Paper shape: a large fraction of memory locations are write-once or
 * write-same (Inv-Top near 1), and zero is the single most common
 * stored value.
 */

#include <iostream>

#include "bench/common.hpp"
#include "core/report.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_memory_locations");
    vp::TextTable table({"program", "locations", "stores(M)", "InvTop%",
                         "InvAll%", "LVP%", "Zero%", "fullyInv%"});

    for (const auto *w : workloads::allWorkloads()) {
        const vpsim::Program &prog = w->program();
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::MemoryProfiler mprof;
        mprof.instrument(mgr);
        mgr.attach(cpu);
        workloads::runToCompletion(cpu, *w, "train");

        std::size_t fully_invariant = 0;
        for (const auto *loc :
             mprof.topLocationsByWrites(mprof.numLocations())) {
            if (loc->writes.invTop() == 1.0)
                ++fully_invariant;
        }
        table.row()
            .cell(w->name())
            .cell(static_cast<std::uint64_t>(mprof.numLocations()))
            .cell(static_cast<double>(mprof.totalStores()) / 1e6, 2)
            .percent(mprof.weightedWriteMetric(
                &core::ValueProfile::invTop))
            .percent(mprof.weightedWriteMetric(
                &core::ValueProfile::invAll))
            .percent(
                mprof.weightedWriteMetric(&core::ValueProfile::lvp))
            .percent(mprof.weightedWriteMetric(
                &core::ValueProfile::zeroFraction))
            .percent(static_cast<double>(fully_invariant) /
                     static_cast<double>(mprof.numLocations()));
    }
    table.print(std::cout,
                "E9 (thesis ch. VII): memory-location value profiles "
                "per benchmark (stores, 8-byte granularity, train)");

    // Detail view: hottest locations of the lisp interpreter.
    {
        const auto &w = workloads::findWorkload("lisp");
        const vpsim::Program &prog = w.program();
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::MemoryProfiler mprof;
        mprof.instrument(mgr);
        mgr.attach(cpu);
        workloads::runToCompletion(cpu, w, "train");
        std::cout << "\n";
        core::memoryReport(mprof, 10)
            .print(std::cout, "E9 detail: top written locations, lisp");
    }
    return 0;
}
