/**
 * @file
 * E8 — profiling overhead (the paper's Table on instrumentation
 * slowdown). Uses google-benchmark to time the same workload run
 * four ways:
 *
 *   native    — no listener attached (the uninstrumented binary);
 *   attached  — instrumentation manager attached but nothing routed
 *               (ATOM's empty-analysis baseline);
 *   full      — full value profiling of every register write;
 *   sampled   — convergent sampling of every register write.
 *
 * Paper shape: full value profiling costs an order of magnitude;
 * convergent sampling recovers most of that.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hpp"

namespace
{

const workloads::Workload &
benchWorkload()
{
    return workloads::findWorkload("crc");
}

void
BM_Native(benchmark::State &state)
{
    const auto &w = benchWorkload();
    vpsim::Cpu cpu(w.program(), bench::cpuConfig());
    std::uint64_t insts = 0;
    for (auto _ : state) {
        const auto res = workloads::runToCompletion(cpu, w, "train");
        insts = res.dynamicInsts;
        benchmark::DoNotOptimize(res.exitCode);
    }
    state.counters["insts"] = static_cast<double>(insts);
}

void
BM_AttachedEmpty(benchmark::State &state)
{
    const auto &w = benchWorkload();
    const vpsim::Program &prog = w.program();
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, bench::cpuConfig());
    mgr.attach(cpu);
    for (auto _ : state) {
        const auto res = workloads::runToCompletion(cpu, w, "train");
        benchmark::DoNotOptimize(res.exitCode);
    }
}

void
profiledRun(benchmark::State &state, core::ProfileMode mode)
{
    const auto &w = benchWorkload();
    const vpsim::Program &prog = w.program();
    for (auto _ : state) {
        // Rebuild the profiler each iteration so every run pays the
        // same (cold-table) cost, like a fresh profiling run would.
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::InstProfilerConfig cfg;
        cfg.mode = mode;
        core::InstructionProfiler prof(img, cfg);
        prof.profileAllWrites(mgr);
        mgr.attach(cpu);
        const auto res = workloads::runToCompletion(cpu, w, "train");
        benchmark::DoNotOptimize(res.exitCode);
        state.counters["profiled%"] = prof.fractionProfiled() * 100.0;
    }
}

void
BM_FullProfile(benchmark::State &state)
{
    profiledRun(state, core::ProfileMode::Full);
}

void
BM_SampledProfile(benchmark::State &state)
{
    profiledRun(state, core::ProfileMode::Sampled);
}

void
BM_RandomProfile(benchmark::State &state)
{
    profiledRun(state, core::ProfileMode::Random);
}

} // namespace

BENCHMARK(BM_Native)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttachedEmpty)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullProfile)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampledProfile)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RandomProfile)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    bench::StatsSession stats_session("table_overhead");
    std::printf("E8: profiling overhead — compare BM_FullProfile and "
                "BM_SampledProfile times against BM_Native\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
