/**
 * @file
 * E17 (extension; thesis ch. II context, Gabbay [17]) — register-file
 * value profile: for each architectural register, aggregated over the
 * suite, how invariant is the stream of values written to it?
 *
 * Expected shape: the stack pointer and link register are highly
 * value-local (few distinct values, high Inv-All), argument registers
 * are semi-invariant, temporaries are the most variant — the ordering
 * that makes register-file prediction attractive for some registers
 * and hopeless for others.
 */

#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "core/register_profiler.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_registers");
    struct Agg
    {
        std::uint64_t writes = 0;
        double invTop = 0, invAll = 0, lvp = 0;
    };
    std::vector<Agg> agg(vpsim::numRegs);

    for (const auto *w : workloads::allWorkloads()) {
        const vpsim::Program &prog = w->program();
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::RegisterProfiler rprof;
        rprof.instrument(mgr);
        mgr.attach(cpu);
        workloads::runToCompletion(cpu, *w, "train");

        for (unsigned r = 0; r < vpsim::numRegs; ++r) {
            const auto &prof = rprof.profileFor(r);
            const auto writes = prof.executions();
            if (writes == 0)
                continue;
            agg[r].writes += writes;
            const auto weight = static_cast<double>(writes);
            agg[r].invTop += prof.invTop() * weight;
            agg[r].invAll += prof.invAll() * weight;
            agg[r].lvp += prof.lvp() * weight;
        }
    }

    vp::TextTable table({"register", "writes(M)", "LVP%", "InvTop%",
                         "InvAll%"});
    for (unsigned r = 0; r < vpsim::numRegs; ++r) {
        if (agg[r].writes == 0)
            continue;
        const auto weight = static_cast<double>(agg[r].writes);
        table.row()
            .cell(vpsim::regName(r))
            .cell(weight / 1e6, 2)
            .percent(agg[r].lvp / weight)
            .percent(agg[r].invTop / weight)
            .percent(agg[r].invAll / weight);
    }
    table.print(std::cout,
                "E17 (extension): value profile per architectural "
                "register, suite aggregate, train inputs");
    return 0;
}
