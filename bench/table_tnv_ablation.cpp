/**
 * @file
 * E13 — design ablation of the TNV table (DESIGN.md): table size N,
 * clear interval, and replacement policy, measured against an exact
 * oracle (full per-pc value histograms) on the suite's load streams.
 *
 * Expected shape: the paper's steady/clear policy at N=8,
 * clear=2048 tracks the oracle closely; pure LFU suffers on phased
 * streams; tiny tables and very short clear intervals lose accuracy.
 */

#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "support/table.hpp"

namespace
{

struct Variant
{
    const char *name;
    core::TnvConfig tnv;
};

std::vector<Variant>
variants()
{
    using Policy = core::TnvConfig::Policy;
    std::vector<Variant> out;
    auto add = [&out](const char *name, unsigned cap,
                      std::uint64_t clear, Policy policy) {
        core::TnvConfig cfg;
        cfg.capacity = cap;
        cfg.clearInterval = clear;
        cfg.policy = policy;
        out.push_back({name, cfg});
    };
    add("paper: N=8 clear=2048", 8, 2048, Policy::SteadyClear);
    add("N=4 clear=2048", 4, 2048, Policy::SteadyClear);
    add("N=16 clear=2048", 16, 2048, Policy::SteadyClear);
    add("N=8 clear=256", 8, 256, Policy::SteadyClear);
    add("N=8 clear=8192", 8, 8192, Policy::SteadyClear);
    add("N=8 pure LFU", 8, 2048, Policy::PureLfu);
    add("N=8 LRU", 8, 2048, Policy::Lru);
    add("N=1 clear=2048", 1, 2048, Policy::SteadyClear);
    return out;
}

/** Error/agreement of one variant on one already-built program run. */
struct VariantScore
{
    double err = 0.0;
    double agree = 0.0;
};

VariantScore
scoreProgram(const Variant &variant, const vpsim::Program &prog,
             const std::vector<std::uint32_t> &pcs,
             const std::function<void(vpsim::Cpu &)> &run)
{
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, bench::cpuConfig());

    core::InstProfilerConfig cfg;
    cfg.profile.tnv = variant.tnv;
    core::InstructionProfiler prof(img, cfg);
    prof.profileInsts(mgr, pcs);

    bench::OracleProfiler oracle;
    mgr.instrumentInsts(pcs, &oracle);
    mgr.attach(cpu);
    run(cpu);

    const auto snap =
        core::ProfileSnapshot::fromInstructionProfiler(prof);
    return {bench::invTopErrorVsOracle(snap, oracle),
            bench::topValueAgreementVsOracle(snap, oracle)};
}

} // namespace

int
main()
{
    bench::StatsSession stats_session("table_tnv_ablation");
    vp::TextTable table({"variant", "|dInvTop|%", "topValueAgree%",
                         "synth|dInvTop|%"});

    // Seeded synthetic programs from the differential-testing
    // generator: a suite-independent column (register-write streams,
    // since generated programs are ALU-dense and load-light).
    std::vector<vp::check::Generated> synth;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        synth.push_back(bench::syntheticProgram(seed));

    for (const auto &variant : variants()) {
        double err_sum = 0, agree_sum = 0;
        int n = 0;
        for (const auto *w : workloads::allWorkloads()) {
            instr::Image img(w->program());
            const auto score = scoreProgram(
                variant, w->program(), img.loadInsts(),
                [&](vpsim::Cpu &cpu) {
                    workloads::runToCompletion(cpu, *w, "train");
                });
            err_sum += score.err;
            agree_sum += score.agree;
            ++n;
        }
        double synth_err_sum = 0;
        for (const auto &gen : synth) {
            instr::Image img(gen.program);
            synth_err_sum +=
                scoreProgram(variant, gen.program,
                             img.regWritingInsts(),
                             [](vpsim::Cpu &cpu) { cpu.run(); })
                    .err;
        }
        table.row()
            .cell(variant.name)
            .percent(err_sum / n, 2)
            .percent(agree_sum / n)
            .percent(synth_err_sum / static_cast<double>(synth.size()),
                     2);
    }

    table.print(std::cout,
                "E13: TNV design ablation vs exact oracle (load "
                "streams, suite averages, train inputs; synth = "
                "seeded generator programs, write streams)");
    return 0;
}
