/**
 * @file
 * E10 — thesis chapter on parameter profiling: the most-called
 * procedures across the suite with per-argument invariance — the
 * candidate list for procedure specialization and memoization [32].
 *
 * Paper shape: a substantial share of hot procedures have at least
 * one semi-invariant argument.
 */

#include <iostream>

#include "bench/common.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_parameters");
    vp::TextTable table({"program", "procedure", "calls", "arg",
                         "InvTop%", "InvAll%", "Diff", "top value"});

    std::size_t procs_with_semi_invariant_arg = 0;
    std::size_t procs_with_args = 0;

    for (const auto *w : workloads::allWorkloads()) {
        const vpsim::Program &prog = w->program();
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::ParameterProfiler pprof;
        pprof.instrument(mgr);
        mgr.attach(cpu);
        workloads::runToCompletion(cpu, *w, "train");

        bool first_of_program = true;
        std::size_t shown = 0;
        for (const auto *rec : pprof.byCallCount()) {
            if (shown++ >= 3)
                break;
            if (!rec->args.empty()) {
                ++procs_with_args;
                bool semi = false;
                for (const auto &arg : rec->args)
                    semi |= arg.invTop() >= 0.5;
                procs_with_semi_invariant_arg += semi;
            }
            if (rec->args.empty()) {
                table.row()
                    .cell(first_of_program ? w->name()
                                           : std::string(""))
                    .cell(rec->proc->name)
                    .cell(rec->calls)
                    .cell("-");
                first_of_program = false;
                continue;
            }
            for (std::size_t i = 0; i < rec->args.size(); ++i) {
                const auto &arg = rec->args[i];
                const auto top = arg.tnv().top();
                table.row()
                    .cell(first_of_program && i == 0
                              ? w->name()
                              : std::string(""))
                    .cell(i == 0 ? rec->proc->name : std::string(""))
                    .cell(rec->calls)
                    .cell(vp::format("a%zu", i))
                    .percent(arg.invTop())
                    .percent(arg.invAll())
                    .cell(arg.distinct())
                    .cell(top ? vp::format("%llu",
                                           static_cast<unsigned long long>(
                                               top->value))
                              : std::string("-"));
                first_of_program = false;
            }
        }
    }

    table.print(std::cout,
                "E10 (thesis ch. VIII): top procedures by call count "
                "with per-argument value profiles, train inputs");
    std::cout << "\nprocedures with >=1 semi-invariant argument: "
              << procs_with_semi_invariant_arg << " / "
              << procs_with_args << "\n";
    return 0;
}
