/**
 * @file
 * Shared driver helpers for the experiment binaries. Each bench binary
 * regenerates one table or figure from the paper (see DESIGN.md's
 * per-experiment index); this header holds the profiling drivers they
 * share so that every experiment measures the same way.
 */

#ifndef VP_BENCH_COMMON_HPP
#define VP_BENCH_COMMON_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/generator.hpp"
#include "check/oracle.hpp"
#include "core/instruction_profiler.hpp"
#include "core/memory_profiler.hpp"
#include "core/parameter_profiler.hpp"
#include "core/snapshot.hpp"
#include "instrument/manager.hpp"
#include "workloads/parallel_runner.hpp"
#include "workloads/workload.hpp"

namespace bench
{

/** Cpu configuration used by every experiment. */
vpsim::CpuConfig cpuConfig();

/** What to instrument. */
enum class Target
{
    Loads,      ///< load instructions only
    AllWrites,  ///< every register-writing instruction
};

/** Result of one profiled workload run. */
struct ProfiledRun
{
    core::ProfileSnapshot snapshot;
    vpsim::RunResult run;
    double fractionProfiled = 1.0;
    /** Execution-weighted means over all profiled instructions. */
    double invTop = 0.0;
    double invAll = 0.0;
    double lvp = 0.0;
    double zeroFraction = 0.0;
    /** Mean distinct-value count per static instruction. */
    double meanDistinct = 0.0;
    std::size_t staticInsts = 0;
};

/** Run one workload under the instruction profiler. */
ProfiledRun profileWorkload(const workloads::Workload &w,
                            const std::string &dataset, Target target,
                            const core::InstProfilerConfig &cfg = {});

/**
 * Profile every registered workload — one independent shard per
 * workload, fanned out over `jobs` worker threads (0 = one per
 * hardware thread, 1 = sequential). Results come back in canonical
 * workload order, so tables built from them are identical for any job
 * count; only wall-clock changes.
 */
std::vector<ProfiledRun>
profileSuite(const std::string &dataset, Target target,
             const core::InstProfilerConfig &cfg = {},
             unsigned jobs = 0);

/**
 * Worker count for the experiment drivers: one thread per hardware
 * thread unless the VP_BENCH_JOBS environment variable overrides it
 * (set VP_BENCH_JOBS=1 to reproduce the old sequential drivers).
 * VP_BENCH_JOBS must be a positive integer or "auto"; zero, negative
 * or non-numeric values are fatal configuration errors.
 */
unsigned benchJobs();

/**
 * RAII stats sidecar for the experiment binaries: the constructor
 * enables runtime stats collection, the destructor writes the global
 * registry as JSON to `<name>.stats.json` in the current directory
 * (or under $VP_STATS_SIDECAR when it names a directory). Set
 * VP_STATS_SIDECAR=0 to disable collection and the sidecar entirely —
 * the overhead-measurement configuration.
 */
class StatsSession
{
  public:
    explicit StatsSession(std::string name);
    ~StatsSession();

    StatsSession(const StatsSession &) = delete;
    StatsSession &operator=(const StatsSession &) = delete;

  private:
    std::string sidecarPath; ///< empty when disabled
};

/**
 * Oracle profiler: exact per-pc value histograms (unbounded memory),
 * used by the TNV ablation to measure estimation error. This is the
 * differential-testing oracle (src/check/oracle.hpp) — the benches
 * measure estimation error against the very same ground truth the
 * checkers verify the engine with.
 */
using OracleProfiler = vp::check::OracleProfiler;

/**
 * A seeded synthetic workload program from the vp::check generator —
 * denser in calls than the checker default so value streams are long
 * enough to exercise TNV clearing. Used by the ablation benches as a
 * suite-independent stress row.
 */
vp::check::Generated syntheticProgram(std::uint64_t seed);

/** Mean of per-entity |invTop(snapshot) - invTop(oracle)|, weighted. */
double invTopErrorVsOracle(const core::ProfileSnapshot &snap,
                           const OracleProfiler &oracle);

/** Weighted fraction of entities whose TNV top == oracle top value. */
double topValueAgreementVsOracle(const core::ProfileSnapshot &snap,
                                 const OracleProfiler &oracle);

} // namespace bench

#endif // VP_BENCH_COMMON_HPP
