/**
 * @file
 * E11 — thesis chapter II context ([17, 18, 34, 39]): value-predictor
 * comparison over the suite's instruction streams, plus the
 * profile-guided filter of Gabbay & Mendelson [18].
 *
 * Paper shape (Wang & Franklin report ~42/52/52/60/69% for
 * LVP/stride/2-level/hybrid/hybrid2 on SPEC92): stride >= LVP,
 * hybrids >= components; profile-guided filtering keeps accuracy
 * while sharply cutting mispredictions and table pressure.
 */

#include <iostream>
#include <iterator>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "predict/harness.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace
{

struct Maker
{
    const char *name;
    std::unique_ptr<predict::ValuePredictor> (*make)();
};

std::unique_ptr<predict::ValuePredictor>
makeLvp()
{
    return predict::makeLastValuePredictor();
}

std::unique_ptr<predict::ValuePredictor>
makeStride()
{
    return predict::makeStridePredictor();
}

std::unique_ptr<predict::ValuePredictor>
makeTwoLevel()
{
    return predict::makeTwoLevelPredictor();
}

std::unique_ptr<predict::ValuePredictor>
makeHybridLvpStride()
{
    return predict::makeHybridPredictor(
        predict::makeLastValuePredictor(),
        predict::makeStridePredictor());
}

std::unique_ptr<predict::ValuePredictor>
makeHybridStride2Level()
{
    return predict::makeHybridPredictor(
        predict::makeStridePredictor(),
        predict::makeTwoLevelPredictor());
}

} // namespace

int
main()
{
    bench::StatsSession stats_session("table_predictors");
    const Maker makers[] = {
        {"lvp", makeLvp},
        {"stride", makeStride},
        {"2level", makeTwoLevel},
        {"hybrid(lvp+stride)", makeHybridLvpStride},
        {"hybrid(stride+2level)", makeHybridStride2Level},
    };

    vp::TextTable table({"predictor", "accuracy%", "coverage%",
                         "precision%", "mispred(K)"});

    const auto &suite = workloads::allWorkloads();
    for (const auto *w : suite)
        w->program(); // pre-assemble on the main thread

    // Fan the (maker x workload) runs out across cores; each run owns
    // its whole predictor/Cpu/manager shard. Stats are summed per
    // maker afterwards, so totals match the sequential driver's.
    constexpr std::size_t num_makers = std::size(makers);
    std::vector<predict::PredictorStats> stats(num_makers *
                                               suite.size());
    vp::ThreadPool::parallelFor(
        bench::benchJobs(), stats.size(), [&](std::size_t i) {
            const Maker &maker = makers[i / suite.size()];
            const workloads::Workload *w = suite[i % suite.size()];
            auto pred = maker.make();
            const vpsim::Program &prog = w->program();
            instr::Image img(prog);
            instr::InstrumentManager mgr(img);
            vpsim::Cpu cpu(prog, bench::cpuConfig());
            predict::PredictionHarness harness;
            harness.addPredictor(pred.get());
            harness.instrument(mgr, img.regWritingInsts());
            mgr.attach(cpu);
            workloads::runToCompletion(cpu, *w, "train");
            stats[i] = pred->stats();
        });

    for (std::size_t m = 0; m < num_makers; ++m) {
        predict::PredictorStats total;
        for (std::size_t j = 0; j < suite.size(); ++j) {
            const auto &s = stats[m * suite.size() + j];
            total.executions += s.executions;
            total.predictions += s.predictions;
            total.correct += s.correct;
        }
        table.row()
            .cell(makers[m].name)
            .percent(total.accuracy())
            .percent(total.coverage())
            .percent(total.precision())
            .cell(static_cast<double>(total.mispredictions()) / 1e3,
                  1);
    }

    // Profile-guided filtering: profile on train, predict on test.
    // One shard per workload: the profiling run and the prediction
    // run for a workload stay on one thread, the workloads fan out.
    {
        struct GuidedResult
        {
            predict::PredictorStats plain, guided;
            std::size_t admitted = 0, allWrites = 0;
        };
        std::vector<GuidedResult> guided_runs(suite.size());
        vp::ThreadPool::parallelFor(
            bench::benchJobs(), suite.size(), [&](std::size_t i) {
                const workloads::Workload *w = suite[i];
                const auto profile = bench::profileWorkload(
                    *w, "train", bench::Target::AllWrites);

                predict::LvpConfig lcfg;
                lcfg.confidenceBits = 0;
                auto plain = predict::makeLastValuePredictor(lcfg);
                predict::ProfileGuidedPredictor guided(
                    predict::makeLastValuePredictor(lcfg),
                    profile.snapshot);

                const vpsim::Program &prog = w->program();
                instr::Image img(prog);
                instr::InstrumentManager mgr(img);
                vpsim::Cpu cpu(prog, bench::cpuConfig());
                predict::PredictionHarness harness;
                harness.addPredictor(plain.get());
                harness.addPredictor(&guided);
                harness.instrument(mgr, img.regWritingInsts());
                mgr.attach(cpu);
                workloads::runToCompletion(cpu, *w, "test");

                guided_runs[i] = {plain->stats(), guided.stats(),
                                  guided.admitted(),
                                  img.regWritingInsts().size()};
            });

        predict::PredictorStats plain_total, guided_total;
        std::size_t admitted = 0, all_writes = 0;
        auto accumulate = [](predict::PredictorStats &into,
                             const predict::PredictorStats &from) {
            into.executions += from.executions;
            into.predictions += from.predictions;
            into.correct += from.correct;
        };
        for (const auto &r : guided_runs) {
            accumulate(plain_total, r.plain);
            accumulate(guided_total, r.guided);
            admitted += r.admitted;
            all_writes += r.allWrites;
        }

        vp::TextTable guided_table({"predictor", "accuracy%",
                                    "precision%", "mispred(K)",
                                    "static insts"});
        guided_table.row()
            .cell("lvp (unfiltered, no confidence)")
            .percent(plain_total.accuracy())
            .percent(plain_total.precision())
            .cell(static_cast<double>(plain_total.mispredictions()) /
                      1e3,
                  1)
            .cell(static_cast<std::uint64_t>(all_writes));
        guided_table.row()
            .cell("lvp (profile-guided [18])")
            .percent(guided_total.accuracy())
            .percent(guided_total.precision())
            .cell(static_cast<double>(guided_total.mispredictions()) /
                      1e3,
                  1)
            .cell(static_cast<std::uint64_t>(admitted));

        table.print(std::cout,
                    "E11a: value-predictor comparison, all register "
                    "writes, suite aggregate, train inputs");
        std::cout << "\n";
        guided_table.print(
            std::cout,
            "E11b: profile-guided prediction (profile on train, "
            "predict on test)");
    }
    return 0;
}
