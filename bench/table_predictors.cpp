/**
 * @file
 * E11 — thesis chapter II context ([17, 18, 34, 39]): value-predictor
 * comparison over the suite's instruction streams, plus the
 * profile-guided filter of Gabbay & Mendelson [18].
 *
 * Paper shape (Wang & Franklin report ~42/52/52/60/69% for
 * LVP/stride/2-level/hybrid/hybrid2 on SPEC92): stride >= LVP,
 * hybrids >= components; profile-guided filtering keeps accuracy
 * while sharply cutting mispredictions and table pressure.
 */

#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "predict/harness.hpp"
#include "support/table.hpp"

namespace
{

struct Maker
{
    const char *name;
    std::unique_ptr<predict::ValuePredictor> (*make)();
};

std::unique_ptr<predict::ValuePredictor>
makeLvp()
{
    return predict::makeLastValuePredictor();
}

std::unique_ptr<predict::ValuePredictor>
makeStride()
{
    return predict::makeStridePredictor();
}

std::unique_ptr<predict::ValuePredictor>
makeTwoLevel()
{
    return predict::makeTwoLevelPredictor();
}

std::unique_ptr<predict::ValuePredictor>
makeHybridLvpStride()
{
    return predict::makeHybridPredictor(
        predict::makeLastValuePredictor(),
        predict::makeStridePredictor());
}

std::unique_ptr<predict::ValuePredictor>
makeHybridStride2Level()
{
    return predict::makeHybridPredictor(
        predict::makeStridePredictor(),
        predict::makeTwoLevelPredictor());
}

} // namespace

int
main()
{
    const Maker makers[] = {
        {"lvp", makeLvp},
        {"stride", makeStride},
        {"2level", makeTwoLevel},
        {"hybrid(lvp+stride)", makeHybridLvpStride},
        {"hybrid(stride+2level)", makeHybridStride2Level},
    };

    vp::TextTable table({"predictor", "accuracy%", "coverage%",
                         "precision%", "mispred(K)"});

    for (const auto &maker : makers) {
        predict::PredictorStats total;
        for (const auto *w : workloads::allWorkloads()) {
            auto pred = maker.make();
            const vpsim::Program &prog = w->program();
            instr::Image img(prog);
            instr::InstrumentManager mgr(img);
            vpsim::Cpu cpu(prog, bench::cpuConfig());
            predict::PredictionHarness harness;
            harness.addPredictor(pred.get());
            harness.instrument(mgr, img.regWritingInsts());
            mgr.attach(cpu);
            workloads::runToCompletion(cpu, *w, "train");
            total.executions += pred->stats().executions;
            total.predictions += pred->stats().predictions;
            total.correct += pred->stats().correct;
        }
        table.row()
            .cell(maker.name)
            .percent(total.accuracy())
            .percent(total.coverage())
            .percent(total.precision())
            .cell(static_cast<double>(total.mispredictions()) / 1e3,
                  1);
    }

    // Profile-guided filtering: profile on train, predict on test.
    {
        predict::PredictorStats plain_total, guided_total;
        std::size_t admitted = 0, all_writes = 0;
        for (const auto *w : workloads::allWorkloads()) {
            const auto profile = bench::profileWorkload(
                *w, "train", bench::Target::AllWrites);

            predict::LvpConfig lcfg;
            lcfg.confidenceBits = 0;
            auto plain = predict::makeLastValuePredictor(lcfg);
            predict::ProfileGuidedPredictor guided(
                predict::makeLastValuePredictor(lcfg),
                profile.snapshot);

            const vpsim::Program &prog = w->program();
            instr::Image img(prog);
            instr::InstrumentManager mgr(img);
            vpsim::Cpu cpu(prog, bench::cpuConfig());
            predict::PredictionHarness harness;
            harness.addPredictor(plain.get());
            harness.addPredictor(&guided);
            harness.instrument(mgr, img.regWritingInsts());
            mgr.attach(cpu);
            workloads::runToCompletion(cpu, *w, "test");

            auto accumulate = [](predict::PredictorStats &into,
                                 const predict::PredictorStats &from) {
                into.executions += from.executions;
                into.predictions += from.predictions;
                into.correct += from.correct;
            };
            accumulate(plain_total, plain->stats());
            accumulate(guided_total, guided.stats());
            admitted += guided.admitted();
            all_writes += img.regWritingInsts().size();
        }

        vp::TextTable guided_table({"predictor", "accuracy%",
                                    "precision%", "mispred(K)",
                                    "static insts"});
        guided_table.row()
            .cell("lvp (unfiltered, no confidence)")
            .percent(plain_total.accuracy())
            .percent(plain_total.precision())
            .cell(static_cast<double>(plain_total.mispredictions()) /
                      1e3,
                  1)
            .cell(static_cast<std::uint64_t>(all_writes));
        guided_table.row()
            .cell("lvp (profile-guided [18])")
            .percent(guided_total.accuracy())
            .percent(guided_total.precision())
            .cell(static_cast<double>(guided_total.mispredictions()) /
                      1e3,
                  1)
            .cell(static_cast<std::uint64_t>(admitted));

        table.print(std::cout,
                    "E11a: value-predictor comparison, all register "
                    "writes, suite aggregate, train inputs");
        std::cout << "\n";
        guided_table.print(
            std::cout,
            "E11b: profile-guided prediction (profile on train, "
            "predict on test)");
    }
    return 0;
}
