/**
 * @file
 * E12 — thesis chapter X: the profile-guided code-specialization case
 * study, end to end. The parameter profiler finds matmul's scale()
 * factor to be perfectly semi-invariant; the specializer binds it,
 * and the table reports dynamic-instruction savings when the guard
 * hits (train: factor matches), when the profile came from the other
 * input (test run with train-profiled factor: guard misses), and the
 * optimization counters.
 *
 * Paper shape: solid single-digit-to-low-double-digit percent dynamic
 * savings when the value holds; graceful, small overhead when it does
 * not.
 */

#include <iostream>

#include "bench/common.hpp"
#include "specialize/specializer.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace
{

std::uint64_t
profiledFactor(const workloads::Workload &w, const std::string &dataset)
{
    const vpsim::Program &prog = w.program();
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, bench::cpuConfig());
    core::ParameterProfiler pprof;
    pprof.instrument(mgr);
    mgr.attach(cpu);
    workloads::runToCompletion(cpu, w, dataset);
    const auto *scale = pprof.recordFor("scale");
    if (!scale || scale->args.size() < 2)
        vp_fatal("scale() profile missing");
    return scale->args[1].tnv().top()->value;
}

specialize::SpeedupReport
runPair(const workloads::Workload &w, const vpsim::Program &orig,
        const specialize::SpecializeResult &spec,
        const std::string &dataset)
{
    vpsim::Cpu orig_cpu(orig, bench::cpuConfig());
    orig_cpu.reset();
    w.inject(orig_cpu, dataset);
    vpsim::Cpu spec_cpu(spec.program, bench::cpuConfig());
    spec_cpu.reset();
    w.inject(spec_cpu, dataset);
    return specialize::compareRuns(orig_cpu, spec_cpu, &spec);
}

/** Counts retired instructions whose pc lies in given ranges. */
struct RangeCounter : vpsim::ExecListener
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
    std::uint64_t count = 0;

    void
    onInst(std::uint32_t pc, const vpsim::Inst &, bool,
           std::uint64_t) override
    {
        for (const auto &[lo, hi] : ranges)
            if (pc >= lo && pc < hi) {
                ++count;
                return;
            }
    }
};

/** Dynamic instructions spent inside the given code ranges. */
std::uint64_t
rangeInsts(const workloads::Workload &w, const vpsim::Program &prog,
           const std::string &dataset,
           std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges)
{
    vpsim::Cpu cpu(prog, bench::cpuConfig());
    RangeCounter counter;
    counter.ranges = std::move(ranges);
    cpu.addListener(&counter);
    cpu.reset();
    w.inject(cpu, dataset);
    cpu.run();
    return counter.count;
}

} // namespace

int
main()
{
    bench::StatsSession stats_session("table_specialization");
    const auto &w = workloads::findWorkload("matmul");
    const vpsim::Program &orig = w.program();

    const std::uint64_t train_factor = profiledFactor(w, "train");
    const auto spec = specialize::specializeProcedure(
        orig, "scale",
        {{static_cast<std::uint8_t>(vpsim::regA0 + 1), train_factor}});

    vp::TextTable table({"scenario", "orig insts(M)", "spec insts(M)",
                         "saving%", "outputs"});

    const auto hit = runPair(w, orig, spec, "train");
    table.row()
        .cell("guard hits (train input, train profile)")
        .cell(static_cast<double>(hit.originalInsts) / 1e6, 3)
        .cell(static_cast<double>(hit.specializedInsts) / 1e6, 3)
        .percent(1.0 - 1.0 / hit.speedup())
        .cell(hit.outputsMatch ? "match" : "MISMATCH");

    const auto miss = runPair(w, orig, spec, "test");
    table.row()
        .cell("guard misses (test input, train profile)")
        .cell(static_cast<double>(miss.originalInsts) / 1e6, 3)
        .cell(static_cast<double>(miss.specializedInsts) / 1e6, 3)
        .percent(1.0 - 1.0 / miss.speedup())
        .cell(miss.outputsMatch ? "match" : "MISMATCH");

    // Re-profiling on the new input recovers the win.
    const std::uint64_t test_factor = profiledFactor(w, "test");
    const auto respec = specialize::specializeProcedure(
        orig, "scale",
        {{static_cast<std::uint8_t>(vpsim::regA0 + 1), test_factor}});
    const auto rehit = runPair(w, orig, respec, "test");
    table.row()
        .cell("guard hits (test input, test profile)")
        .cell(static_cast<double>(rehit.originalInsts) / 1e6, 3)
        .cell(static_cast<double>(rehit.specializedInsts) / 1e6, 3)
        .percent(1.0 - 1.0 / rehit.speedup())
        .cell(rehit.outputsMatch ? "match" : "MISMATCH");

    table.print(std::cout,
                "E12 (thesis ch. X): profile-guided specialization of "
                "matmul scale() on its semi-invariant factor");

    // Procedure-local accounting: instructions spent in scale() vs in
    // guard + specialized clone (the paper's case-study view).
    {
        const vpsim::Procedure *scale_proc = orig.findProc("scale");
        const std::uint64_t local_orig = rangeInsts(
            w, orig, "train", {{scale_proc->entry, scale_proc->end}});
        const vpsim::Procedure *spec_scale =
            spec.program.findProc("scale");
        const std::uint64_t local_spec = rangeInsts(
            w, spec.program, "train",
            {{spec_scale->entry, spec_scale->end},
             {spec.specializedEntry, spec.specializedEnd},
             {spec.guardEntry,
              spec.guardEntry + spec.guardLength}});
        vp::TextTable local({"view", "orig insts(K)", "spec insts(K)",
                             "saving%"});
        local.row()
            .cell("scale() + guard + clone only")
            .cell(static_cast<double>(local_orig) / 1e3, 1)
            .cell(static_cast<double>(local_spec) / 1e3, 1)
            .percent(1.0 - static_cast<double>(local_spec) /
                               static_cast<double>(local_orig));
        std::cout << "\n";
        local.print(std::cout,
                    "E12 detail: procedure-local dynamic cost "
                    "(train input, train profile)");
    }

    std::cout << "\noptimizer: " << spec.stats.foldedToConst
              << " folded to const, " << spec.stats.immediated
              << " immediated, " << spec.stats.branchesFolded
              << " branches folded, " << spec.stats.removedDead
              << " dead removed, " << spec.stats.nopsCompacted
              << " nops compacted; guard length " << spec.guardLength
              << "\n";
    return 0;
}
