/**
 * @file
 * E16 (extension; Richardson [32], thesis §IV.C.4) — memoization
 * potential. For the hottest procedures of every benchmark: the
 * static purity verdict (is caching the result even legal?), the
 * number of distinct argument tuples, and the hit rate a memoization
 * cache would achieve (unbounded upper bound and a 256-entry
 * direct-mapped cache).
 *
 * Expected shape: a handful of procedures are both pure and highly
 * repetitive (the profitable candidates the thesis's discussion
 * anticipates); most hot procedures are either impure (touch memory)
 * or see mostly-fresh argument tuples.
 */

#include <iostream>

#include "bench/common.hpp"
#include "core/memo_profiler.hpp"
#include "specialize/purity.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_memoization");
    vp::TextTable table({"program", "procedure", "calls", "purity",
                         "tuples", "hit%(inf)", "hit%(256)"});

    for (const auto *w : workloads::allWorkloads()) {
        const vpsim::Program &prog = w->program();
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::MemoProfiler memo;
        memo.instrument(mgr);
        mgr.attach(cpu);
        workloads::runToCompletion(cpu, *w, "train");

        const specialize::PurityAnalysis purity(prog);
        bool first = true;
        std::size_t shown = 0;
        for (const auto *stats : memo.byCallCount()) {
            if (shown++ >= 3)
                break;
            table.row()
                .cell(first ? w->name() : std::string(""))
                .cell(stats->proc->name)
                .cell(stats->calls)
                .cell(specialize::purityName(
                    purity.verdict(stats->proc->name)))
                .cell(stats->distinctTuples)
                .percent(stats->unboundedHitRate())
                .percent(stats->cacheHitRate());
            first = false;
        }
    }

    table.print(std::cout,
                "E16 (extension): memoization potential — purity and "
                "argument-tuple repetition of hot procedures (train)");
    return 0;
}
