/**
 * @file
 * E15 (extension; thesis future work via Young & Smith [40]) —
 * context-sensitive parameter profiling. For each benchmark, the
 * call-weighted fraction of procedure-argument mass that is
 * semi-invariant (Inv-Top >= 90%) when profiled globally per
 * procedure vs per call site, and the number of distinct call sites.
 *
 * Expected shape: per-site profiling strictly dominates; programs
 * whose procedures are reached from many sites with site-stable
 * arguments (dispatchers, helpers) gain the most — these are the
 * extra specialization opportunities a call-site-cloning compiler
 * could harvest.
 */

#include <iostream>

#include "bench/common.hpp"
#include "core/parameter_profiler.hpp"
#include "support/table.hpp"

int
main()
{
    bench::StatsSession stats_session("table_context_params");
    vp::TextTable table({"program", "calls(K)", "sites", "semiInv%",
                         "semiInv%/site", "gain(pp)"});

    double sum_global = 0, sum_site = 0;
    int n = 0;
    for (const auto *w : workloads::allWorkloads()) {
        const vpsim::Program &prog = w->program();
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::ParamProfilerConfig cfg;
        cfg.contextSensitive = true;
        core::ParameterProfiler pprof(cfg);
        pprof.instrument(mgr);
        mgr.attach(cpu);
        workloads::runToCompletion(cpu, *w, "train");

        const double global = pprof.semiInvariantArgFraction(0.9);
        const double per_site =
            pprof.semiInvariantArgFractionPerSite(0.9);
        table.row()
            .cell(w->name())
            .cell(static_cast<double>(pprof.totalCalls()) / 1e3, 1)
            .cell(static_cast<std::uint64_t>(pprof.allSites().size()))
            .percent(global)
            .percent(per_site)
            .cell((per_site - global) * 100.0, 1);
        sum_global += global;
        sum_site += per_site;
        ++n;
    }
    table.row()
        .cell("average")
        .cell("")
        .cell("")
        .percent(sum_global / n)
        .percent(sum_site / n)
        .cell((sum_site - sum_global) / n * 100.0, 1);

    table.print(std::cout,
                "E15 (extension): semi-invariant (InvTop >= 90%) "
                "argument mass, global vs per call site, train inputs");
    return 0;
}
