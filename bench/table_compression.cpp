/**
 * @file
 * E19 — profile encoding density at millions-of-locations scale.
 *
 * Builds synthetic snapshots shaped like real memory-value profiles
 * (mostly single-valued locations, a hot multi-valued minority) and
 * measures how many bytes each entity costs in every encoding:
 *
 *   snapshot v1 — the text format (one line per entity);
 *   snapshot v2 — the compressed binary entity block;
 *   wire v1     — fixed-width delta payloads, chunked like an emitter;
 *   wire v2     — compressed delta payloads, same chunking.
 *
 * Sizes are counted through a byte-counting stream, so the bench never
 * materialises a v1 rendering of a multi-million-entity profile — the
 * peak-RSS figure it reports is dominated by the snapshot itself plus
 * one encoded chunk, which is the bound the vpd daemon lives under.
 *
 * Like table_hotpath this bench exists to be *tracked*: it writes
 * BENCH_compression.json (see tools/bench_compare.py), and the CI
 * sanitizer leg runs it in --smoke form. The PR budget it guards:
 * v2 must stay at least 4x denser than v1 on both surfaces.
 *
 * Usage: table_compression [--out FILE] [--reps N] [--smoke]
 *   --out FILE  where the JSON lands (default BENCH_compression.json)
 *   --reps N    timed encode repetitions per shape (default 3)
 *   --smoke     20k entities per shape — the sanitizer-leg CI smoke
 */

#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/wire.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

#include <iostream>

namespace
{

using clock_type = std::chrono::steady_clock;
using core::EntitySummary;
using core::ProfileSnapshot;

/** Discards everything written to it, keeping only the byte count. */
class CountingBuf : public std::streambuf
{
  public:
    std::uint64_t count = 0;

  protected:
    int overflow(int ch) override
    {
        ++count;
        return ch;
    }
    std::streamsize xsputn(const char *, std::streamsize n) override
    {
        count += static_cast<std::uint64_t>(n);
        return n;
    }
};

std::uint64_t
savedBytes(const ProfileSnapshot &snap, int version)
{
    CountingBuf buf;
    std::ostream os(&buf);
    snap.save(os, version);
    return buf.count;
}

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** A location that only ever held one value — the common case the
 *  compact encodings exist for. */
EntitySummary
constantSummary(std::uint64_t value, std::uint64_t total)
{
    EntitySummary s;
    s.totalExecutions = total;
    s.profiledExecutions = total;
    s.distinct = 1;
    s.topValues = {{value, total}};
    s.invTop = 1.0;
    s.invAll = 1.0;
    s.lvp = total > 0
                ? static_cast<double>(total - 1) /
                      static_cast<double>(total)
                : 0.0;
    s.zeroFraction = value == 0 ? 1.0 : 0.0;
    return s;
}

/** A hot multi-valued location (full TNV table). */
EntitySummary
hotSummary(std::uint64_t &rng, std::size_t ntop)
{
    EntitySummary s;
    s.distinct = 100;
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < ntop; ++i) {
        const std::uint64_t c = 1000 >> i;
        s.topValues.emplace_back(splitmix64(rng) >> 24, c);
        covered += c;
    }
    s.profiledExecutions = covered + 200; // tail outside the table
    s.totalExecutions = s.profiledExecutions * 2;
    const double n = static_cast<double>(s.profiledExecutions);
    s.invTop = static_cast<double>(s.topValues[0].second) / n;
    s.invAll = static_cast<double>(covered) / n;
    s.lvp = 0.5;
    s.zeroFraction = 0.0;
    return s;
}

enum class Shape
{
    ConstantDense,  ///< fixed-stride keys, uniform counts (run heaven)
    ConstantSparse, ///< jittered keys and counts (no runs form)
    Mixed,          ///< 90% constant, 10% hot — the realistic profile
    HotMultiValue,  ///< every entity holds a full table (worst case)
};

ProfileSnapshot
buildSnapshot(Shape shape, std::uint64_t entities)
{
    ProfileSnapshot snap;
    std::uint64_t rng = 0x5EEDull + static_cast<std::uint64_t>(shape);
    std::uint64_t key = 0x100000;
    for (std::uint64_t i = 0; i < entities; ++i) {
        switch (shape) {
          case Shape::ConstantDense:
            snap.entities.emplace(key, constantSummary(
                (splitmix64(rng) >> 32), 16));
            key += 8;
            break;
          case Shape::ConstantSparse:
            snap.entities.emplace(key, constantSummary(
                (splitmix64(rng) >> 32),
                1 + (splitmix64(rng) & 63)));
            key += 8 + (splitmix64(rng) & 0xF8);
            break;
          case Shape::Mixed:
            if (i % 10 == 9)
                snap.entities.emplace(key, hotSummary(rng, 4));
            else
                snap.entities.emplace(key, constantSummary(
                    (splitmix64(rng) >> 32), 16));
            key += 8;
            break;
          case Shape::HotMultiValue:
            snap.entities.emplace(key, hotSummary(rng, 8));
            key += 8;
            break;
        }
    }
    // A millions-of-locations run always overflows something.
    snap.droppedStores = 17;
    snap.droppedLoads = 3;
    return snap;
}

/**
 * Encode the snapshot as an emitter would — entity-disjoint delta
 * frames of `chunk` entities — and return the summed frame bytes.
 * The first chunk is decoded back as a sanity check.
 */
std::uint64_t
wireBytes(const ProfileSnapshot &snap, std::uint16_t version,
          std::uint64_t chunk)
{
    std::uint64_t bytes = 0;
    vp::serve::Delta delta;
    delta.producerId = 1;
    delta.seq = 0;
    bool verified = false;
    auto it = snap.entities.begin();
    while (it != snap.entities.end()) {
        delta.entities.entities.clear();
        for (std::uint64_t i = 0; i < chunk &&
                                  it != snap.entities.end();
             ++i, ++it)
            delta.entities.entities.emplace(it->first, it->second);
        ++delta.seq;
        const auto frame = vp::serve::encodeDelta(delta, version);
        bytes += frame.size();
        if (!verified) {
            vp::serve::Frame decoded;
            std::size_t consumed = 0;
            std::string error;
            if (vp::serve::tryDecode(frame.data(), frame.size(),
                                     decoded, consumed, error) !=
                vp::serve::DecodeStatus::Ok)
                vp_fatal("self-check: v%u frame rejected: %s",
                         unsigned(version), error.c_str());
            vp::serve::Delta out;
            if (!vp::serve::decodeDelta(decoded, out, error))
                vp_fatal("self-check: v%u delta rejected: %s",
                         unsigned(version), error.c_str());
            if (out.entities.size() != delta.entities.size())
                vp_fatal("self-check: v%u decode lost entities",
                         unsigned(version));
            verified = true;
        }
    }
    return bytes;
}

double
peakRssMb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    return static_cast<double>(ru.ru_maxrss) / 1024.0; // KB on Linux
}

struct Row
{
    std::string name;
    std::uint64_t entities = 0;
    double snapV1Bpe = 0.0;
    double snapV2Bpe = 0.0;
    double wireV1Bpe = 0.0;
    double wireV2Bpe = 0.0;
    double encodeMbps = 0.0;

    double snapRatio() const { return snapV1Bpe / snapV2Bpe; }
    double wireRatio() const { return wireV1Bpe / wireV2Bpe; }
};

double
geomean(const std::vector<Row> &rows, double (*get)(const Row &))
{
    if (rows.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const auto &r : rows)
        log_sum += std::log(get(r));
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

void
writeJson(const std::string &path, const std::vector<Row> &rows,
          unsigned reps, bool smoke, double rss_mb)
{
    std::ofstream out(path);
    if (!out)
        vp_fatal("cannot write '%s'", path.c_str());
    char buf[512];
    out << "{\n"
        << "  \"bench\": \"table_compression\",\n"
        << "  \"version\": 1,\n"
        << "  \"unit\": \"bytes_per_entity\",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"name\": \"%s\", \"entities\": %" PRIu64
            ", \"snapshot_v1_bpe\": %.2f, \"snapshot_v2_bpe\": %.2f"
            ", \"snapshot_ratio\": %.2f, \"wire_v1_bpe\": %.2f"
            ", \"wire_v2_bpe\": %.2f, \"wire_ratio\": %.2f"
            ", \"encode_mbps\": %.1f}%s\n",
            r.name.c_str(), r.entities, r.snapV1Bpe, r.snapV2Bpe,
            r.snapRatio(), r.wireV1Bpe, r.wireV2Bpe, r.wireRatio(),
            r.encodeMbps, i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    std::snprintf(
        buf, sizeof buf,
        "  ],\n"
        "  \"suite\": {\"geomean_snapshot_v2_bpe\": %.2f, "
        "\"geomean_wire_v2_bpe\": %.2f, "
        "\"min_snapshot_ratio\": %.2f, "
        "\"min_wire_ratio\": %.2f, "
        "\"peak_rss_mb\": %.1f}\n"
        "}\n",
        geomean(rows, [](const Row &r) { return r.snapV2Bpe; }),
        geomean(rows, [](const Row &r) { return r.wireV2Bpe; }),
        [&] {
            double m = 1e300;
            for (const auto &r : rows)
                m = std::min(m, r.snapRatio());
            return rows.empty() ? 0.0 : m;
        }(),
        [&] {
            double m = 1e300;
            for (const auto &r : rows)
                m = std::min(m, r.wireRatio());
            return rows.empty() ? 0.0 : m;
        }(),
        rss_mb);
    out << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_compression.json";
    unsigned reps = 3;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (a == "--reps" && i + 1 < argc) {
            reps = static_cast<unsigned>(std::atoi(argv[++i]));
            if (reps == 0)
                vp_fatal("--reps wants a positive integer");
        } else if (a == "--smoke") {
            smoke = true;
        } else {
            std::fprintf(stderr,
                         "usage: table_compression [--out FILE] "
                         "[--reps N] [--smoke]\n");
            return 2;
        }
    }
    if (smoke)
        reps = 1;

    // Full scale is a multi-million-location memory profile; the
    // all-hot shape is a quarter of that (it is the dense worst case,
    // and a real profile never looks like it end to end).
    const std::uint64_t base = smoke ? 20'000 : 2'000'000;
    const std::uint64_t chunk = 50'000;
    const struct
    {
        Shape shape;
        const char *name;
        std::uint64_t entities;
    } shapes[] = {
        {Shape::ConstantDense, "constant_dense", base},
        {Shape::ConstantSparse, "constant_sparse", base},
        {Shape::Mixed, "mixed_90_10", base},
        {Shape::HotMultiValue, "hot_multivalue", base / 4},
    };

    std::printf("E19: profile encoding density "
                "(bytes/entity, %s scale)\n",
                smoke ? "smoke" : "full");

    std::vector<Row> rows;
    for (const auto &sh : shapes) {
        const ProfileSnapshot snap = buildSnapshot(sh.shape,
                                                   sh.entities);
        Row r;
        r.name = sh.name;
        r.entities = sh.entities;
        const double n = static_cast<double>(sh.entities);
        r.snapV1Bpe = static_cast<double>(savedBytes(snap, 1)) / n;
        const std::uint64_t v2_bytes = savedBytes(snap, 2);
        r.snapV2Bpe = static_cast<double>(v2_bytes) / n;
        r.wireV1Bpe = static_cast<double>(wireBytes(snap, 1, chunk)) / n;
        r.wireV2Bpe = static_cast<double>(wireBytes(snap, 2, chunk)) / n;

        // Best-of-reps v2 snapshot encode throughput.
        double best_secs = 1e300;
        for (unsigned rep = 0; rep < reps; ++rep) {
            const auto t0 = clock_type::now();
            (void)savedBytes(snap, 2);
            const double secs =
                std::chrono::duration<double>(clock_type::now() - t0)
                    .count();
            best_secs = std::min(best_secs, secs);
        }
        if (best_secs > 0.0)
            r.encodeMbps = static_cast<double>(v2_bytes) /
                           (1024.0 * 1024.0) / best_secs;
        rows.push_back(std::move(r));
    }
    const double rss_mb = peakRssMb();

    vp::TextTable table({"shape", "entities", "snap v1 B/e",
                         "snap v2 B/e", "ratio", "wire v1 B/e",
                         "wire v2 B/e", "ratio", "enc MB/s"});
    for (const auto &r : rows) {
        table.row()
            .cell(r.name)
            .cell(r.entities)
            .cell(r.snapV1Bpe, 1)
            .cell(r.snapV2Bpe, 1)
            .cell(r.snapRatio(), 1)
            .cell(r.wireV1Bpe, 1)
            .cell(r.wireV2Bpe, 1)
            .cell(r.wireRatio(), 1)
            .cell(r.encodeMbps, 0);
    }
    table.print(std::cout);
    std::printf("peak RSS: %.1f MB\n", rss_mb);

    writeJson(out_path, rows, reps, smoke, rss_mb);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
