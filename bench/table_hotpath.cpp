/**
 * @file
 * E18 — profiled-execution throughput (the repo's perf trajectory).
 *
 * Measures end-to-end profiled instructions/sec over the whole E1
 * suite four ways:
 *
 *   native    — no listener attached (raw interpreter speed);
 *   attached  — manager attached, nothing routed (boundary cost);
 *   full      — full value profiling of every register write;
 *   sampled   — convergent sampling of every register write.
 *
 * Unlike the experiment tables this bench exists to be *tracked*: it
 * writes BENCH_hotpath.json (see tools/bench_compare.py), the repo's
 * throughput trajectory toward the ROADMAP's 100 M-instruction goal.
 * Each cell is the best of --reps timed runs, so the number reported
 * is the machine's capability, not scheduler noise.
 *
 * Usage: table_hotpath [--out FILE] [--reps N] [--smoke]
 *   --out FILE  where the JSON lands (default BENCH_hotpath.json)
 *   --reps N    timed repetitions per cell (default 3, best kept)
 *   --smoke     1 rep, three workloads — the sanitizer-leg CI smoke
 */

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

#include <iostream>

namespace
{

using clock_type = std::chrono::steady_clock;

double
secondsSince(clock_type::time_point t0)
{
    return std::chrono::duration<double>(clock_type::now() - t0)
        .count();
}

enum class Mode
{
    Native,
    Attached,
    Full,
    Sampled,
};

/** One timed profiled run; returns instructions/sec. */
double
timedRun(const workloads::Workload &w, Mode mode, unsigned reps,
         std::uint64_t &insts_out)
{
    const vpsim::Program &prog = w.program();
    double best = 0.0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        vpsim::Cpu cpu(prog, bench::cpuConfig());
        core::InstProfilerConfig cfg;
        cfg.mode = mode == Mode::Sampled ? core::ProfileMode::Sampled
                                         : core::ProfileMode::Full;
        core::InstructionProfiler prof(img, cfg);
        if (mode == Mode::Full || mode == Mode::Sampled)
            prof.profileAllWrites(mgr);
        if (mode != Mode::Native)
            mgr.attach(cpu);

        const auto t0 = clock_type::now();
        const auto res = workloads::runToCompletion(cpu, w, "train");
        const double secs = secondsSince(t0);

        insts_out = res.dynamicInsts;
        if (secs > 0.0) {
            const double ips =
                static_cast<double>(res.dynamicInsts) / secs;
            if (ips > best)
                best = ips;
        }
    }
    return best;
}

struct Row
{
    std::string name;
    std::uint64_t insts = 0;
    double nativeIps = 0.0;
    double attachedIps = 0.0;
    double fullIps = 0.0;
    double sampledIps = 0.0;
};

double
geomean(const std::vector<Row> &rows, double Row::*field)
{
    if (rows.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const auto &r : rows)
        log_sum += std::log(r.*field);
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

void
writeJson(const std::string &path, const std::vector<Row> &rows,
          unsigned reps, bool smoke)
{
    std::ofstream out(path);
    if (!out)
        vp_fatal("cannot write '%s'", path.c_str());
    char buf[256];
    out << "{\n"
        << "  \"bench\": \"table_hotpath\",\n"
        << "  \"version\": 1,\n"
        << "  \"unit\": \"instructions_per_second\",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::snprintf(buf, sizeof buf,
                      "    {\"name\": \"%s\", \"insts\": %" PRIu64
                      ", \"native_ips\": %.0f, \"attached_ips\": %.0f"
                      ", \"full_ips\": %.0f, \"sampled_ips\": %.0f}%s\n",
                      r.name.c_str(), r.insts, r.nativeIps,
                      r.attachedIps, r.fullIps, r.sampledIps,
                      i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    std::snprintf(buf, sizeof buf,
                  "  ],\n"
                  "  \"suite\": {\"geomean_native_ips\": %.0f, "
                  "\"geomean_attached_ips\": %.0f, "
                  "\"geomean_full_ips\": %.0f, "
                  "\"geomean_sampled_ips\": %.0f}\n"
                  "}\n",
                  geomean(rows, &Row::nativeIps),
                  geomean(rows, &Row::attachedIps),
                  geomean(rows, &Row::fullIps),
                  geomean(rows, &Row::sampledIps));
    out << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_hotpath.json";
    unsigned reps = 3;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (a == "--reps" && i + 1 < argc) {
            reps = static_cast<unsigned>(std::atoi(argv[++i]));
            if (reps == 0)
                vp_fatal("--reps wants a positive integer");
        } else if (a == "--smoke") {
            smoke = true;
        } else {
            std::fprintf(stderr,
                         "usage: table_hotpath [--out FILE] "
                         "[--reps N] [--smoke]\n");
            return 2;
        }
    }
    if (smoke)
        reps = 1;

    bench::StatsSession stats_session("table_hotpath");
    std::printf("E18: profiled-execution throughput "
                "(instructions/sec, best of %u)\n", reps);

    std::vector<Row> rows;
    for (const auto *w : workloads::allWorkloads()) {
        if (smoke && rows.size() >= 3)
            break;
        Row r;
        r.name = w->name();
        r.nativeIps = timedRun(*w, Mode::Native, reps, r.insts);
        r.attachedIps = timedRun(*w, Mode::Attached, reps, r.insts);
        r.fullIps = timedRun(*w, Mode::Full, reps, r.insts);
        r.sampledIps = timedRun(*w, Mode::Sampled, reps, r.insts);
        rows.push_back(std::move(r));
    }

    vp::TextTable table({"program", "dyn insts", "native M/s",
                         "attached M/s", "full M/s", "sampled M/s"});
    for (const auto &r : rows) {
        table.row()
            .cell(r.name)
            .cell(static_cast<std::uint64_t>(r.insts))
            .cell(r.nativeIps / 1e6, 1)
            .cell(r.attachedIps / 1e6, 1)
            .cell(r.fullIps / 1e6, 1)
            .cell(r.sampledIps / 1e6, 1);
    }
    table.row()
        .cell("geomean")
        .cell("")
        .cell(geomean(rows, &Row::nativeIps) / 1e6, 1)
        .cell(geomean(rows, &Row::attachedIps) / 1e6, 1)
        .cell(geomean(rows, &Row::fullIps) / 1e6, 1)
        .cell(geomean(rows, &Row::sampledIps) / 1e6, 1);
    table.print(std::cout);

    writeJson(out_path, rows, reps, smoke);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
