/**
 * @file
 * vpcheck — the differential-testing harness.
 *
 * Generates seeded random VPSim programs and runs each through the
 * differential checkers (full-vs-oracle, shard merge, sampled-vs-full,
 * snapshot round-trip, serve loopback, adaptive specialization; see
 * src/check/checkers.hpp). On a divergence it
 * greedily shrinks the program to a minimal still-failing reproducer
 * and writes a replay bundle — an assembly file whose comment header
 * records the checker, the seed, and the exact commands that replay
 * the failure.
 *
 * The `adapt` checker draws its programs from a phase-shifting
 * generator shape (GenConfig::bindPhases > 1): a mostly-invariant
 * argument steps to a new value partway through the run, so online
 * install, guard misses, deoptimization and re-specialization all
 * happen inside a single trial.
 *
 * Usage:
 *   vpcheck [--trials N] [--seed S] [--checker NAME] [options]
 *   vpcheck --replay FILE.vps [--checker NAME]
 *   vpcheck --checker soak [--seed S] [soak options]
 *
 * Options:
 *   --trials N       seeded trials to run (default 100)
 *   --seed S         base seed; trial i uses base seed S+i, so any
 *                    trial replays as --trials 1 --seed S+i (default 1)
 *   --checker NAME   all|oracle|merge|sampled|snapshot|serve|adapt
 *                    (default all)
 *   --out DIR        where replay bundles are written (default ".")
 *   --shards K       shards for the merge checker (default 3)
 *   --jobs N         worker threads for the parallel-merge leg
 *                    (default 3)
 *   --canary[=KIND]  mutation-canary mode: deliberately break the
 *                    engine and *expect* the checkers to catch it —
 *                    exit 0 iff a divergence is found, shrunk, and
 *                    bundled within the trial budget. KIND selects the
 *                    planted bug: `merge` breaks TnvTable::merge,
 *                    `record` makes the record() hot-path cache
 *                    double-count its hits, `compress` makes the v2
 *                    entity-block encoder off-by-one a count (caught
 *                    by the snapshot fixed-point and serve
 *                    byte-identity checkers), `adapt` makes the
 *                    adaptive engine install redirects that skip the
 *                    guard — a stale specialization that goes
 *                    architecturally wrong when the bound value shifts
 *                    (caught by the adapt checker) — and `all` (the
 *                    default) runs one full phase per kind and
 *                    requires every one to be caught. Combines with
 *                    --replay: a bundle produced by a canary run
 *                    reproduces its divergence only with the same
 *                    canary re-enabled
 *   --replay FILE    re-run the checkers on a saved bundle
 *
 * `--checker soak` is different in kind: instead of in-process
 * differential trials it runs ONE hostile-world scenario (see
 * src/check/soak.hpp) — a multi-process vpd aggregation tree plus an
 * emitter fleet, faults injected from a seeded schedule, final root
 * aggregate byte-compared against the serial oracle merge. Its knobs:
 *   --soak-producers N        emitter processes (default 8)
 *   --soak-levels 2|3         tree depth (default 2)
 *   --soak-leaves N           leaf daemons (default 2)
 *   --soak-mids N             mid daemons, levels=3 only (default 1)
 *   --soak-deltas N           deltas per producer (default 4)
 *   --soak-events N           fault-schedule length (default 8)
 *   --soak-no-kill-producers  disable producer SIGKILLs
 *   --soak-no-kill-daemons    disable daemon kill/restore
 *   --soak-no-corrupt         disable corrupt-frame splicing
 *   --soak-no-mixed           all producers speak wire v2
 *   --vpd PATH                vpd binary (default: next to vpcheck)
 *   --soak-dir DIR            scratch dir (default mkdtemp)
 *   --soak-keep               keep scratch artifacts on success
 *   --soak-verbose            narrate fault injection on stderr
 * (`--soak-producer` is the hidden child-process mode the driver
 * execs for each emitter; not for direct use.)
 *
 * Exit status: 0 = no divergence (or, with --canary, the canary was
 * caught), 1 = divergence found (or canary missed), 2 = usage error.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "check/checkers.hpp"
#include "check/generator.hpp"
#include "check/seed.hpp"
#include "check/shrink.hpp"
#include "check/soak.hpp"
#include "core/profile_codec.hpp"
#include "core/tnv_table.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"
#include "vpsim/assembler.hpp"

namespace
{

struct Options
{
    std::uint64_t trials = 100;
    std::uint64_t seed = 1;
    std::string checker = "all";
    std::string outDir = ".";
    unsigned shards = 3;
    unsigned jobs = 3;
    /** Empty = no canary; else "merge", "record", "compress", or
     *  "all". */
    std::string canaryKind;
    std::string replayFile;
    std::size_t shrinkBudget = 400;
    /** `--checker soak` scenario shape (seed comes from --seed). */
    vp::check::SoakConfig soak;
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vpcheck [--trials N] [--seed S] [--checker NAME]\n"
        "               [--out DIR] [--shards K] [--jobs N]\n"
        "               [--canary[=merge|record|compress|adapt|all]]\n"
        "       vpcheck --replay FILE.vps [--checker NAME]\n"
        "       vpcheck --checker soak [--seed S] [--soak-producers N]\n"
        "               [--soak-levels 2|3] [--soak-leaves N]\n"
        "               [--soak-mids N] [--soak-deltas N]\n"
        "               [--soak-events N] [--soak-no-kill-producers]\n"
        "               [--soak-no-kill-daemons] [--soak-no-corrupt]\n"
        "               [--soak-no-mixed] [--vpd PATH] [--soak-dir DIR]\n"
        "               [--soak-keep] [--soak-verbose]\n"
        "checkers: all, oracle, merge, sampled, snapshot, serve, "
        "adapt, soak\n";
    std::exit(2);
}

std::uint64_t
parseU64(const char *text, const char *what)
{
    std::int64_t v = 0;
    if (!vp::parseInt(text, v) || v < 0)
        vp_fatal("--%s wants a non-negative integer, got '%s'", what,
                 text);
    return static_cast<std::uint64_t>(v);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--trials") {
            opt.trials = parseU64(next(), "trials");
        } else if (a == "--seed") {
            opt.seed = parseU64(next(), "seed");
        } else if (a == "--checker") {
            opt.checker = next();
        } else if (a == "--out") {
            opt.outDir = next();
        } else if (a == "--shards") {
            opt.shards =
                static_cast<unsigned>(parseU64(next(), "shards"));
        } else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(parseU64(next(), "jobs"));
        } else if (a == "--canary") {
            opt.canaryKind = "all";
        } else if (a.rfind("--canary=", 0) == 0) {
            opt.canaryKind = a.substr(std::strlen("--canary="));
            if (opt.canaryKind != "merge" &&
                opt.canaryKind != "record" &&
                opt.canaryKind != "compress" &&
                opt.canaryKind != "adapt" &&
                opt.canaryKind != "all")
                vp_fatal("--canary wants merge, record, compress, "
                         "adapt, or all; got '%s'",
                         opt.canaryKind.c_str());
        } else if (a == "--replay") {
            opt.replayFile = next();
        } else if (a == "--soak-producers") {
            opt.soak.producers = static_cast<unsigned>(
                parseU64(next(), "soak-producers"));
        } else if (a == "--soak-levels") {
            opt.soak.levels = static_cast<unsigned>(
                parseU64(next(), "soak-levels"));
        } else if (a == "--soak-leaves") {
            opt.soak.leaves = static_cast<unsigned>(
                parseU64(next(), "soak-leaves"));
        } else if (a == "--soak-mids") {
            opt.soak.mids =
                static_cast<unsigned>(parseU64(next(), "soak-mids"));
        } else if (a == "--soak-deltas") {
            opt.soak.deltasPerProducer = static_cast<unsigned>(
                parseU64(next(), "soak-deltas"));
        } else if (a == "--soak-events") {
            opt.soak.faultEvents = static_cast<unsigned>(
                parseU64(next(), "soak-events"));
        } else if (a == "--soak-no-kill-producers") {
            opt.soak.killProducers = false;
        } else if (a == "--soak-no-kill-daemons") {
            opt.soak.killDaemons = false;
        } else if (a == "--soak-no-corrupt") {
            opt.soak.corruptFrames = false;
        } else if (a == "--soak-no-mixed") {
            opt.soak.mixedVersions = false;
        } else if (a == "--vpd") {
            opt.soak.vpdPath = next();
        } else if (a == "--soak-dir") {
            opt.soak.workDir = next();
        } else if (a == "--soak-keep") {
            opt.soak.keepArtifacts = true;
        } else if (a == "--soak-verbose") {
            opt.soak.verbose = true;
        } else if (a == "--shrink-budget") {
            opt.shrinkBudget =
                static_cast<std::size_t>(parseU64(next(),
                                                  "shrink-budget"));
        } else if (a == "--help" || a == "-h") {
            usage();
        } else {
            std::cerr << "vpcheck: unknown option '" << a << "'\n";
            usage();
        }
    }
    if (opt.trials == 0)
        vp_fatal("--trials must be at least 1");
    if (opt.shards < 2)
        vp_fatal("--shards must be at least 2");
    if (opt.jobs < 1)
        vp_fatal("--jobs must be at least 1");
    return opt;
}

std::vector<vp::check::Checker>
selectedCheckers(const std::string &name)
{
    if (name == "all")
        return vp::check::allCheckers();
    vp::check::Checker c;
    if (!vp::check::parseCheckerName(name, c)) {
        std::cerr << "vpcheck: unknown checker '" << name << "'\n";
        usage();
    }
    return {c};
}

/** The minimal still-failing source for one (checker, program). */
vp::check::ShrinkResult
shrinkFailure(const std::string &source, vp::check::Checker checker,
              const vp::check::CheckOptions &copts,
              std::size_t budget)
{
    const auto still_fails = [&](const std::string &candidate) {
        vpsim::Program prog;
        std::string err;
        if (!vpsim::tryAssemble(candidate, prog, err) ||
            !prog.validate().empty())
            return false;
        return !vp::check::runChecker(checker, prog, copts).ok;
    };
    return vp::check::shrinkSource(source, still_fails, budget);
}

/** Write the replay bundle; returns its path. */
std::string
writeBundle(const Options &opt, vp::check::Checker checker,
            std::uint64_t base_seed, const std::string &detail,
            const vp::check::ShrinkResult &shrunk)
{
    const std::string name = vp::format(
        "vpcheck-%s-%llu.vps", vp::check::checkerName(checker),
        static_cast<unsigned long long>(base_seed));
    const std::string path = opt.outDir + "/" + name;
    std::ofstream os(path);
    if (!os)
        vp_fatal("cannot write replay bundle '%s'", path.c_str());
    os << "# vpcheck replay bundle\n";
    os << "# checker: " << vp::check::checkerName(checker) << "\n";
    os << "# divergence: " << detail << "\n";
    os << "# base seed: " << base_seed << " (generator seed "
       << vp::check::trialSeed(base_seed, 0) << ")\n";
    os << "# shrunk: " << shrunk.originalLines << " -> "
       << shrunk.finalLines << " lines in " << shrunk.attempts
       << " attempts\n";
    const std::string canary =
        opt.canaryKind.empty() ? "" : " --canary=" + opt.canaryKind;
    os << "# reproduce: vpcheck" << canary << " --trials 1 --seed "
       << base_seed << " --checker "
       << vp::check::checkerName(checker) << "\n";
    os << "# replay:    vpcheck" << canary << " --replay " << name
       << " --checker " << vp::check::checkerName(checker) << "\n";
    os << shrunk.source;
    return path;
}

/** Report one divergence: shrink it, bundle it, describe it. */
void
reportDivergence(const Options &opt, vp::check::Checker checker,
                 const vp::check::CheckOptions &copts,
                 std::uint64_t base_seed, const std::string &source,
                 const std::string &detail)
{
    std::cerr << "vpcheck: DIVERGENCE [" << vp::check::checkerName(checker)
              << "] seed " << base_seed << ": " << detail << "\n";
    const auto shrunk =
        shrinkFailure(source, checker, copts, opt.shrinkBudget);
    const std::string path =
        writeBundle(opt, checker, base_seed, detail, shrunk);
    std::cerr << "vpcheck: shrunk " << shrunk.originalLines << " -> "
              << shrunk.finalLines << " lines ("
              << shrunk.attempts << " attempts); replay bundle: "
              << path << "\n";
}

/** Plant (or lift) the canaries selected by `kind`. */
void
setCanaries(const std::string &kind, bool enabled)
{
    if (kind == "merge" || kind == "all")
        core::TnvTable::setMergeCanaryForTest(enabled);
    if (kind == "record" || kind == "all")
        core::TnvTable::setRecordCanaryForTest(enabled);
    if (kind == "compress" || kind == "all")
        core::codec::testing::setCompressCanaryForTest(enabled);
    if (kind == "adapt" || kind == "all")
        adapt::AdaptiveEngine::setStaleGuardCanaryForTest(enabled);
}

/**
 * Generator shape for adapt-checker trials: lots of calls, a strongly
 * bound a1 that steps to a new value twice across the run — enough
 * dynamic behaviour to drive install, guard misses, deopt and
 * re-specialization inside one trial.
 */
vp::check::GenConfig
adaptGenConfig()
{
    vp::check::GenConfig cfg;
    cfg.calls = 240;
    cfg.bindChance = 0.85;
    cfg.bindPhases = 3;
    return cfg;
}

/**
 * The program a checker sees in trial `base`: most checkers share the
 * plain generated program, the adapt checker gets the phase-shifting
 * variant (same seed, different shape; lazily generated once).
 */
const vp::check::Generated &
programFor(vp::check::Checker checker, std::uint64_t base,
           const vp::check::Generated &plain,
           std::optional<vp::check::Generated> &adaptive)
{
    if (checker != vp::check::Checker::Adapt)
        return plain;
    if (!adaptive)
        adaptive = vp::check::generate(vp::check::trialSeed(base, 0),
                                       adaptGenConfig());
    return *adaptive;
}

int
runReplay(const Options &opt)
{
    std::ifstream is(opt.replayFile);
    if (!is)
        vp_fatal("cannot open replay file '%s'",
                 opt.replayFile.c_str());
    std::stringstream buf;
    buf << is.rdbuf();
    const std::string source = buf.str();

    vpsim::Program prog;
    std::string err;
    if (!vpsim::tryAssemble(source, prog, err))
        vp_fatal("replay file does not assemble: %s", err.c_str());

    vp::check::CheckOptions copts;
    copts.shards = opt.shards;
    copts.mergeJobs = opt.jobs;
    if (!opt.canaryKind.empty())
        setCanaries(opt.canaryKind, true);
    int divergences = 0;
    for (const auto checker : selectedCheckers(opt.checker)) {
        const auto res = vp::check::runChecker(checker, prog, copts);
        if (res.ok) {
            std::cout << "vpcheck: [" << vp::check::checkerName(checker)
                      << "] ok\n";
        } else {
            ++divergences;
            std::cout << "vpcheck: ["
                      << vp::check::checkerName(checker)
                      << "] DIVERGENCE: " << res.detail << "\n";
        }
    }
    // With a canary planted, reproducing the divergence is success.
    if (!opt.canaryKind.empty())
        return divergences ? 0 : 1;
    return divergences ? 1 : 0;
}

/**
 * One canary phase: plant exactly one kind of bug and spend the trial
 * budget trying to catch it. Returns 0 iff the checkers caught it.
 */
int
runCanaryPhase(const Options &opt, const std::string &kind)
{
    Options phase = opt;
    phase.canaryKind = kind;  // replay bundles name the planted bug
    const auto checkers = selectedCheckers(opt.checker);
    vp::check::CheckOptions copts;
    copts.shards = opt.shards;
    copts.mergeJobs = opt.jobs;

    setCanaries(kind, true);
    int rc = 1;
    for (std::uint64_t i = 0; i < opt.trials && rc != 0; ++i) {
        const std::uint64_t base = opt.seed + i;
        const auto gen =
            vp::check::generate(vp::check::trialSeed(base, 0));
        std::optional<vp::check::Generated> agen;
        for (const auto checker : checkers) {
            const auto &g = programFor(checker, base, gen, agen);
            const auto res =
                vp::check::runChecker(checker, g.program, copts);
            if (res.ok)
                continue;
            reportDivergence(phase, checker, copts, base, g.source,
                             res.detail);
            std::cout << "vpcheck: canary '" << kind
                      << "' caught after " << (i + 1) << " trial(s)\n";
            rc = 0;
            break;
        }
    }
    setCanaries(kind, false);
    if (rc != 0)
        std::cerr << "vpcheck: canary '" << kind << "' NOT caught in "
                  << opt.trials << " trials — the checkers are blind "
                     "to this planted bug\n";
    return rc;
}

int
runTrials(const Options &opt)
{
    if (!opt.canaryKind.empty()) {
        const std::vector<std::string> kinds =
            opt.canaryKind == "all"
                ? std::vector<std::string>{"merge", "record",
                                           "compress", "adapt"}
                : std::vector<std::string>{opt.canaryKind};
        for (const auto &kind : kinds)
            if (runCanaryPhase(opt, kind) != 0)
                return 1;
        return 0;
    }

    const auto checkers = selectedCheckers(opt.checker);
    vp::check::CheckOptions copts;
    copts.shards = opt.shards;
    copts.mergeJobs = opt.jobs;

    for (std::uint64_t i = 0; i < opt.trials; ++i) {
        // Trial i of base seed S is trial 0 of base seed S+i.
        const std::uint64_t base = opt.seed + i;
        const auto gen =
            vp::check::generate(vp::check::trialSeed(base, 0));
        std::optional<vp::check::Generated> agen;
        for (const auto checker : checkers) {
            const auto &g = programFor(checker, base, gen, agen);
            const auto res =
                vp::check::runChecker(checker, g.program, copts);
            if (res.ok)
                continue;
            reportDivergence(opt, checker, copts, base, g.source,
                             res.detail);
            return 1;
        }
    }

    std::cout << "vpcheck: " << opt.trials << " trial(s) x "
              << checkers.size() << " checker(s), 0 divergences "
              << "(seeds " << opt.seed << ".."
              << (opt.seed + opt.trials - 1) << ")\n";
    return 0;
}

/** Absolute path of this vpcheck binary (best effort). */
std::string
selfPath(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/**
 * The hidden `--soak-producer` child-process mode: parse the child
 * flags and run the emitter body. Exits 0 when every delta was
 * acknowledged, 3 when any spilled (the soak driver respawns us).
 */
int
soakProducerMain(int argc, char **argv)
{
    vp::check::SoakProducerOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--soak-producer") {
            continue;
        } else if (a == "--soak-seed") {
            opt.seed = parseU64(next(), "soak-seed");
        } else if (a == "--soak-index") {
            opt.index = static_cast<unsigned>(
                parseU64(next(), "soak-index"));
        } else if (a == "--soak-deltas") {
            opt.count = static_cast<unsigned>(
                parseU64(next(), "soak-deltas"));
        } else if (a == "--soak-addr") {
            opt.addr = next();
        } else if (a == "--soak-spill") {
            opt.spillPath = next();
        } else if (a == "--soak-wire") {
            opt.wireVersion = static_cast<std::uint16_t>(
                parseU64(next(), "soak-wire"));
        } else if (a == "--soak-dwell") {
            opt.dwellMs = static_cast<unsigned>(
                parseU64(next(), "soak-dwell"));
        } else if (a == "--soak-retries") {
            opt.maxRetries = static_cast<unsigned>(
                parseU64(next(), "soak-retries"));
        } else {
            std::cerr << "vpcheck: unknown soak-producer option '"
                      << a << "'\n";
            usage();
        }
    }
    if (opt.addr.empty())
        vp_fatal("--soak-producer requires --soak-addr");
    return vp::check::runSoakProducer(opt);
}

/** `--checker soak`: run one hostile-world scenario. */
int
runSoakMode(const Options &opt, const char *argv0)
{
    vp::check::SoakConfig cfg = opt.soak;
    cfg.seed = opt.seed;
    if (cfg.vpcheckPath.empty())
        cfg.vpcheckPath = selfPath(argv0);
    if (cfg.vpdPath.empty()) {
        const auto slash = cfg.vpcheckPath.rfind('/');
        cfg.vpdPath = slash == std::string::npos
                          ? std::string("vpd")
                          : cfg.vpcheckPath.substr(0, slash + 1) +
                                "vpd";
    }
    std::cout << "vpcheck: soak seed " << cfg.seed << ": "
              << cfg.levels << "-level tree, " << cfg.producers
              << " producer(s), " << cfg.leaves << " leaf daemon(s)"
              << (cfg.levels >= 3
                      ? ", " + std::to_string(cfg.mids) + " mid(s)"
                      : std::string())
              << ", " << cfg.deltasPerProducer
              << " delta(s)/producer\n";
    std::cout << "vpcheck: fault schedule:\n"
              << vp::check::buildSoakSchedule(cfg).text();
    const auto res = vp::check::runSoak(cfg);
    if (!res.ok) {
        std::cerr << "vpcheck: SOAK FAILED: " << res.detail << "\n"
                  << "vpcheck: "
                  << vp::check::seedMessage(cfg.seed) << "\n";
        if (!res.workDir.empty())
            std::cerr << "vpcheck: artifacts kept in " << res.workDir
                      << "\n";
        return 1;
    }
    std::cout << "vpcheck: soak ok — root byte-identical to the "
                 "serial oracle after "
              << res.producerRestarts << " producer restart(s), "
              << res.daemonRestarts << " daemon restore(s), "
              << res.corruptInjected << " corrupt frame(s)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // The child mode bypasses normal option handling entirely: the
    // soak driver execs us with only --soak-* flags.
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--soak-producer") == 0)
            return soakProducerMain(argc, argv);
    const Options opt = parseArgs(argc, argv);
    if (!opt.replayFile.empty())
        return runReplay(opt);
    if (opt.checker == "soak")
        return runSoakMode(opt, argv[0]);
    return runTrials(opt);
}
