/**
 * @file
 * vpd — the profile-aggregation daemon and its control client.
 *
 * Daemon mode:
 *   vpd --listen ADDR [--listen ADDR ...] [--http ADDR ...]
 *       [--snapshot-out FILE] [--snapshot-interval SEC]
 *       [--max-clients N] [--stats[=text|json]] [--stats-out FILE]
 *
 *   Runs the VpdServer event loop on the calling thread until a
 *   SHUTDOWN frame arrives or SIGINT/SIGTERM is delivered. ADDR is
 *   "host:port" (port 0 = ephemeral; the bound address is printed) or
 *   "unix:PATH". The aggregate is persisted atomically to
 *   --snapshot-out on FLUSH, on shutdown, and every
 *   --snapshot-interval seconds while dirty. --http adds the live
 *   query & metrics plane (GET /metrics, /stats.json, /top, /entity,
 *   /producers, /watch) on the same event loop; it implies stats
 *   collection so /metrics is never a page of zeros.
 *
 * Hierarchical aggregation (daemon mode):
 *   vpd --listen ADDR --forward ADDR --forward-id N
 *       [--forward-interval SEC] [--forward-spill FILE]
 *       [--state FILE]
 *
 *   --forward makes this daemon a leaf/mid of a vpd tree: every
 *   --forward-interval seconds it re-emits each producer's merged
 *   partial upstream (under the original producer id; the upstream
 *   replaces by seq, keeping the root byte-identical to a serial
 *   merge). --forward-id is this daemon's unique identity in the
 *   tree, used to detect forwarding loops. --forward-spill catches
 *   partials an unreachable upstream never acked (replayed on the
 *   next start); --state persists the per-producer partials + acked
 *   seqs so a restarted daemon resumes instead of starting over.
 *
 * Control mode:
 *   vpd --connect ADDR --cmd query|snapshot|flush|shutdown
 *       [--out FILE]
 *
 *   query     print the daemon's status line
 *   snapshot  fetch the aggregate (to --out, default stdout)
 *   flush     ask the daemon to persist now
 *   shutdown  ask the daemon to persist and exit
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/file.hpp"
#include "support/logging.hpp"
#include "support/stats_registry.hpp"

namespace
{

vp::serve::VpdServer *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestStop(); // async-signal-safe: one pipe write
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vpd --listen ADDR [--listen ADDR ...] [--http ADDR ...]\n"
        "           [--snapshot-out FILE] [--snapshot-interval SEC]\n"
        "           [--max-clients N] [--stats[=text|json]]\n"
        "           [--stats-out FILE]\n"
        "           [--forward ADDR --forward-id N]\n"
        "           [--forward-interval SEC] [--forward-spill FILE]\n"
        "           [--state FILE]\n"
        "       vpd --connect ADDR --cmd query|snapshot|flush|shutdown\n"
        "           [--out FILE]\n"
        "ADDR is host:port (port 0 = ephemeral) or unix:PATH\n";
    std::exit(2);
}

struct Options
{
    std::vector<std::string> listen;
    std::vector<std::string> http;
    std::string snapshotOut;
    double snapshotInterval = 0.0;
    std::size_t maxClients = 64;
    std::string connect;
    std::string cmd;
    std::string out;
    std::string statsFormat; ///< "" = none, else "text" or "json"
    std::string statsOut;
    std::string forwardAddr;
    std::uint64_t forwardId = 0;
    double forwardInterval = 1.0;
    std::string forwardSpill;
    std::string statePath;
};

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--listen")
            opt.listen.push_back(need(i));
        else if (arg == "--http")
            opt.http.push_back(need(i));
        else if (arg == "--snapshot-out")
            opt.snapshotOut = need(i);
        else if (arg == "--snapshot-interval")
            opt.snapshotInterval = std::atof(need(i));
        else if (arg == "--max-clients") {
            const long v = std::atol(need(i));
            if (v <= 0)
                vp_fatal("--max-clients must be positive");
            opt.maxClients = static_cast<std::size_t>(v);
        } else if (arg == "--connect")
            opt.connect = need(i);
        else if (arg == "--cmd")
            opt.cmd = need(i);
        else if (arg == "--out")
            opt.out = need(i);
        else if (arg == "--stats")
            opt.statsFormat = "text";
        else if (arg.rfind("--stats=", 0) == 0) {
            opt.statsFormat = arg.substr(8);
            if (opt.statsFormat != "text" && opt.statsFormat != "json")
                usage();
        } else if (arg == "--stats-out")
            opt.statsOut = need(i);
        else if (arg == "--forward")
            opt.forwardAddr = need(i);
        else if (arg == "--forward-id") {
            const long long v = std::atoll(need(i));
            if (v <= 0)
                vp_fatal("--forward-id must be positive");
            opt.forwardId = static_cast<std::uint64_t>(v);
        } else if (arg == "--forward-interval") {
            opt.forwardInterval = std::atof(need(i));
            if (opt.forwardInterval < 0.0)
                vp_fatal("--forward-interval must be >= 0");
        } else if (arg == "--forward-spill")
            opt.forwardSpill = need(i);
        else if (arg == "--state")
            opt.statePath = need(i);
        else
            usage();
    }
    if (opt.listen.empty() == opt.connect.empty())
        usage(); // exactly one mode
    if (!opt.connect.empty() && opt.cmd.empty())
        usage();
    if (!opt.forwardAddr.empty() && opt.forwardId == 0)
        vp_fatal("--forward requires --forward-id");
    return opt;
}

int
runDaemon(const Options &opt)
{
    if (!opt.statsFormat.empty() || !opt.statsOut.empty() ||
        !opt.http.empty())
        vp::stats::setEnabled(true);

    vp::serve::ServerConfig cfg;
    cfg.listenAddrs = opt.listen;
    cfg.httpAddrs = opt.http;
    cfg.snapshotPath = opt.snapshotOut;
    cfg.snapshotIntervalSec = opt.snapshotInterval;
    cfg.maxClients = opt.maxClients;
    cfg.forwardAddr = opt.forwardAddr;
    cfg.forwardId = opt.forwardId;
    cfg.forwardIntervalSec = opt.forwardInterval;
    cfg.forwardSpillPath = opt.forwardSpill;
    cfg.statePath = opt.statePath;

    vp::serve::VpdServer server(cfg);
    std::string error;
    if (!server.start(error))
        vp_fatal("%s", error.c_str());
    for (const auto &addr : server.boundAddresses())
        std::cout << "vpd: listening on " << addr.str() << std::endl;
    for (const auto &addr : server.boundHttpAddresses())
        std::cout << "vpd: http on " << addr.str() << std::endl;
    if (!opt.forwardAddr.empty())
        std::cout << "vpd: forwarding to " << opt.forwardAddr
                  << " as daemon " << opt.forwardId << std::endl;

    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    const bool ok = server.run(error);
    g_server = nullptr;
    if (!ok)
        vp_fatal("%s", error.c_str());
    std::cout << "vpd: exiting (" << server.producerCount()
              << " producer(s) aggregated)" << std::endl;

    if (!opt.statsOut.empty()) {
        std::ostringstream body;
        vp::stats::global().writeJson(body);
        if (!vp::atomicWriteFile(opt.statsOut, body.str(), error))
            vp_fatal("%s", error.c_str());
    }
    if (opt.statsFormat == "json")
        vp::stats::global().writeJson(std::cout);
    else if (opt.statsFormat == "text")
        vp::stats::global().writeText(std::cout);
    return 0;
}

int
runControl(const Options &opt)
{
    std::string error;
    if (opt.cmd == "query") {
        std::string text;
        if (!vp::serve::requestQuery(opt.connect, text, error))
            vp_fatal("query failed: %s", error.c_str());
        std::cout << text << "\n";
        return 0;
    }
    if (opt.cmd == "snapshot") {
        core::ProfileSnapshot snap;
        if (!vp::serve::requestSnapshot(opt.connect, snap, error))
            vp_fatal("snapshot failed: %s", error.c_str());
        if (opt.out.empty()) {
            snap.save(std::cout);
        } else if (!snap.saveToFile(opt.out, error)) {
            vp_fatal("%s", error.c_str());
        }
        return 0;
    }
    if (opt.cmd == "flush") {
        if (!vp::serve::requestFlush(opt.connect, error))
            vp_fatal("flush failed: %s", error.c_str());
        return 0;
    }
    if (opt.cmd == "shutdown") {
        if (!vp::serve::requestShutdown(opt.connect, error))
            vp_fatal("shutdown failed: %s", error.c_str());
        return 0;
    }
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    return opt.listen.empty() ? runControl(opt) : runDaemon(opt);
}
