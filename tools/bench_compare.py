#!/usr/bin/env python3
"""Compare two table_hotpath BENCH JSON files for throughput regressions.

Usage: bench_compare.py BASELINE_JSON CURRENT_JSON [--max-regress PCT]

Fails (exit 1) when any suite-level geomean throughput in CURRENT is
more than PCT percent (default 15) below BASELINE. Per-workload rows
are only warned about: single workloads on a loaded CI box jitter well
beyond what a geomean over the suite does, so rows inform, geomeans
gate. Workloads present in only one file are ignored for comparison
but reported, so a silently shrinking suite is visible.

The committed BENCH_hotpath.json is the baseline of record; CI runs a
fresh --smoke measurement against it (smoke runs carry fewer workloads
— the geomeans are then recomputed over the common subset).
"""

import argparse
import json
import math
import sys


def geomean(values):
    assert values
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    if data.get("bench") != "table_hotpath":
        sys.exit(f"bench_compare: {path} is not a table_hotpath report")
    return data


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=15.0,
                    help="max allowed geomean regression, percent")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    base_rows = {w["name"]: w for w in base["workloads"]}
    cur_rows = {w["name"]: w for w in cur["workloads"]}
    common = sorted(base_rows.keys() & cur_rows.keys())
    if not common:
        sys.exit("bench_compare: no common workloads to compare")
    for name in sorted(base_rows.keys() ^ cur_rows.keys()):
        side = "baseline" if name in base_rows else "current"
        print(f"note: workload '{name}' only in {side}; skipped")

    cells = ["native_ips", "attached_ips", "full_ips", "sampled_ips"]

    # Per-row deltas: informational only.
    for name in common:
        for cell in cells:
            b = base_rows[name][cell]
            c = cur_rows[name][cell]
            delta = 100.0 * (c - b) / b
            if delta < -args.max_regress:
                print(f"warn: {name}.{cell} {delta:+.1f}% "
                      f"({b} -> {c})")

    # Suite gate: geomeans over the common subset.
    failed = False
    for cell in cells:
        b = geomean([base_rows[n][cell] for n in common])
        c = geomean([cur_rows[n][cell] for n in common])
        delta = 100.0 * (c - b) / b
        status = "ok"
        if delta < -args.max_regress:
            status = "FAIL"
            failed = True
        print(f"{status}: geomean {cell} {delta:+.1f}% "
              f"({b:.3e} -> {c:.3e}, {len(common)} workloads)")

    if failed:
        sys.exit(f"bench_compare: geomean throughput regressed more "
                 f"than {args.max_regress:.0f}% vs {args.baseline}")
    print("bench_compare: within budget")


if __name__ == "__main__":
    main()
