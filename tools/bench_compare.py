#!/usr/bin/env python3
"""Compare two BENCH JSON files for metric regressions.

Usage: bench_compare.py BASELINE_JSON CURRENT_JSON [--max-regress PCT]

Each tracked bench declares its gated cells and whether bigger numbers
are better (throughput) or worse (bytes per entity); both files must
report the same bench. Fails (exit 1) when any suite-level geomean in
CURRENT is more than PCT percent (default 15) worse than BASELINE.
Per-workload rows are only warned about: single workloads on a loaded
CI box jitter well beyond what a geomean over the suite does, so rows
inform, geomeans gate. Workloads present in only one file are ignored
for comparison but reported, so a silently shrinking suite is visible.

A bench may gate *derived* cells computed from each workload row
instead of the raw cells. table_hotpath does: the CI box is a
single-core VM whose host co-tenancy swings the same binary's
absolute throughput by 2x between runs, so absolute insts/s cannot be
gated at any useful budget. The profiling *slowdown* ratios
(native/attached, native/full, native/sampled) come from phases of
the same run, so the machine speed cancels; those are what a hot-path
regression actually moves, and they are what the gate watches. The
raw throughput cells still print as per-row warnings for the curious.

The committed BENCH_*.json files are the baselines of record; CI runs
fresh --smoke measurements against them (smoke runs carry fewer or
smaller workloads — the geomeans are then recomputed over the common
subset, and byte-density cells are size-invariant by construction).
"""

import argparse
import json
import math
import sys

# bench name -> (warned raw cells, True when bigger is better,
# {gated derived cell -> row -> value} or None to gate the raw cells).
# Derived cells are always lower-is-better slowdown/size ratios.
BENCHES = {
    # Same-run slowdown ratios: machine-speed invariant (see module
    # docstring), lower is better.
    "table_hotpath": (
        ["native_ips", "attached_ips", "full_ips", "sampled_ips"],
        True,
        {
            "attached_slowdown":
                lambda w: w["native_ips"] / w["attached_ips"],
            "full_slowdown":
                lambda w: w["native_ips"] / w["full_ips"],
            "sampled_slowdown":
                lambda w: w["native_ips"] / w["sampled_ips"],
        },
    ),
    "table_compression": (
        ["snapshot_v2_bpe", "wire_v2_bpe"],
        False,
        None,
    ),
    # The ratio is loaded-over-baseline ack p99 — self-normalizing, so
    # it gates the query plane's interference, not the machine's speed.
    "table_serve": (
        ["ingest_p99_ratio"],
        False,
        None,
    ),
    # Dynamic-instruction speedup of the online adaptive engine over
    # plain interpretation. Retired counts are deterministic and the
    # engine converges within a fixed few hundred calls, so the
    # speedup is scale-invariant — smoke runs gate against the
    # full-scale committed baseline at the default budget.
    "table_adaptive": (
        ["speedup"],
        True,
        None,
    ),
}


def geomean(values):
    assert values
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    if data.get("bench") not in BENCHES:
        sys.exit(f"bench_compare: {path} is not a tracked bench report "
                 f"(knows: {', '.join(sorted(BENCHES))})")
    return data


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=15.0,
                    help="max allowed geomean regression, percent")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base["bench"] != cur["bench"]:
        sys.exit(f"bench_compare: bench mismatch: {base['bench']} vs "
                 f"{cur['bench']}")
    cells, higher_is_better, derived = BENCHES[base["bench"]]

    base_rows = {w["name"]: w for w in base["workloads"]}
    cur_rows = {w["name"]: w for w in cur["workloads"]}
    common = sorted(base_rows.keys() & cur_rows.keys())
    if not common:
        sys.exit("bench_compare: no common workloads to compare")
    for name in sorted(base_rows.keys() ^ cur_rows.keys()):
        side = "baseline" if name in base_rows else "current"
        print(f"note: workload '{name}' only in {side}; skipped")

    def regression(baseline, current):
        """Percent worse than baseline (positive = regressed)."""
        delta = 100.0 * (current - baseline) / baseline
        return -delta if higher_is_better else delta

    # Per-row deltas: informational only.
    for name in common:
        for cell in cells:
            b = base_rows[name][cell]
            c = cur_rows[name][cell]
            worse = regression(b, c)
            if worse > args.max_regress:
                print(f"warn: {name}.{cell} {worse:+.1f}% worse "
                      f"({b} -> {c})")

    # Suite gate: geomeans over the common subset. With derived
    # cells, the gate is on the ratios (lower is better); the raw
    # cells above only warn.
    gate_cells = (
        [(name, fn, False) for name, fn in sorted(derived.items())]
        if derived else
        [(cell, (lambda cell: lambda w: w[cell])(cell),
          higher_is_better) for cell in cells]
    )
    failed = False
    for cell, value_of, bigger_better in gate_cells:
        b = geomean([value_of(base_rows[n]) for n in common])
        c = geomean([value_of(cur_rows[n]) for n in common])
        delta = 100.0 * (c - b) / b
        worse = -delta if bigger_better else delta
        status = "ok"
        if worse > args.max_regress:
            status = "FAIL"
            failed = True
        print(f"{status}: geomean {cell} {worse:+.1f}% worse "
              f"({b:.3e} -> {c:.3e}, {len(common)} workloads)")

    if failed:
        sys.exit(f"bench_compare: geomean regressed more than "
                 f"{args.max_regress:.0f}% vs {args.baseline}")
    print("bench_compare: within budget")


if __name__ == "__main__":
    main()
