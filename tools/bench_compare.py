#!/usr/bin/env python3
"""Compare two BENCH JSON files for metric regressions.

Usage: bench_compare.py BASELINE_JSON CURRENT_JSON [--max-regress PCT]

Each tracked bench declares its gated cells and whether bigger numbers
are better (throughput) or worse (bytes per entity); both files must
report the same bench. Fails (exit 1) when any suite-level geomean in
CURRENT is more than PCT percent (default 15) worse than BASELINE.
Per-workload rows are only warned about: single workloads on a loaded
CI box jitter well beyond what a geomean over the suite does, so rows
inform, geomeans gate. Workloads present in only one file are ignored
for comparison but reported, so a silently shrinking suite is visible.

The committed BENCH_*.json files are the baselines of record; CI runs
fresh --smoke measurements against them (smoke runs carry fewer or
smaller workloads — the geomeans are then recomputed over the common
subset, and byte-density cells are size-invariant by construction).
"""

import argparse
import json
import math
import sys

# bench name -> (gated per-workload cells, True when bigger is better)
BENCHES = {
    "table_hotpath": (
        ["native_ips", "attached_ips", "full_ips", "sampled_ips"],
        True,
    ),
    "table_compression": (
        ["snapshot_v2_bpe", "wire_v2_bpe"],
        False,
    ),
}


def geomean(values):
    assert values
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    if data.get("bench") not in BENCHES:
        sys.exit(f"bench_compare: {path} is not a tracked bench report "
                 f"(knows: {', '.join(sorted(BENCHES))})")
    return data


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=15.0,
                    help="max allowed geomean regression, percent")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if base["bench"] != cur["bench"]:
        sys.exit(f"bench_compare: bench mismatch: {base['bench']} vs "
                 f"{cur['bench']}")
    cells, higher_is_better = BENCHES[base["bench"]]

    base_rows = {w["name"]: w for w in base["workloads"]}
    cur_rows = {w["name"]: w for w in cur["workloads"]}
    common = sorted(base_rows.keys() & cur_rows.keys())
    if not common:
        sys.exit("bench_compare: no common workloads to compare")
    for name in sorted(base_rows.keys() ^ cur_rows.keys()):
        side = "baseline" if name in base_rows else "current"
        print(f"note: workload '{name}' only in {side}; skipped")

    def regression(baseline, current):
        """Percent worse than baseline (positive = regressed)."""
        delta = 100.0 * (current - baseline) / baseline
        return -delta if higher_is_better else delta

    # Per-row deltas: informational only.
    for name in common:
        for cell in cells:
            b = base_rows[name][cell]
            c = cur_rows[name][cell]
            worse = regression(b, c)
            if worse > args.max_regress:
                print(f"warn: {name}.{cell} {worse:+.1f}% worse "
                      f"({b} -> {c})")

    # Suite gate: geomeans over the common subset.
    failed = False
    for cell in cells:
        b = geomean([base_rows[n][cell] for n in common])
        c = geomean([cur_rows[n][cell] for n in common])
        worse = regression(b, c)
        status = "ok"
        if worse > args.max_regress:
            status = "FAIL"
            failed = True
        print(f"{status}: geomean {cell} {worse:+.1f}% worse "
              f"({b:.3e} -> {c:.3e}, {len(common)} workloads)")

    if failed:
        sys.exit(f"bench_compare: geomean regressed more than "
                 f"{args.max_regress:.0f}% vs {args.baseline}")
    print("bench_compare: within budget")


if __name__ == "__main__":
    main()
