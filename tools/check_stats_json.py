#!/usr/bin/env python3
"""Validate vpprof/vpd observability output in CI.

Usage: check_stats_json.py [--profile NAME] STATS_JSON [TRACE_JSON]

Checks the stats sidecar against the schema documented in DESIGN.md
("Observability") and, when given, the trace file against the Chrome
trace-event shape Perfetto loads. Exits nonzero with a message on the
first violation.

Profiles select which counters the run under test must have actually
exercised:
  suite  (default) — the `vpprof --workload all --mode sampled` smoke
  vpd              — the `vpd` loopback smoke (streaming aggregation)
"""

import json
import sys

# Counters each smoke run must actually exercise; everything else only
# has to be present. The "suite" profile also cross-checks the shard
# wall-time distribution against runner.jobs.
PROFILES = {
    "suite": {
        "nonzero": [
            "core.tnv.inserts",
            "core.tnv.evictions",
            "core.sampler.bursts",
            "core.sampler.convergences",
            "vpsim.insts",
            "runner.jobs",
        ],
        "dists": ["runner.queue_wait_us", "runner.shard_wall_us"],
    },
    "vpd": {
        "nonzero": [
            "serve.accepts",
            "serve.frames_in",
            "serve.frames_out",
            "serve.bytes_in",
            "serve.bytes_out",
            "serve.deltas_merged",
            "serve.snapshots_saved",
        ],
        "dists": ["serve.merge_us"],
    },
}

DIST_FIELDS = ["count", "min", "max", "mean", "p50", "p99"]


def fail(msg):
    print(f"check_stats_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(path, profile):
    with open(path) as f:
        stats = json.load(f)

    for key in ["version", "counters", "gauges", "distributions"]:
        if key not in stats:
            fail(f"{path}: missing top-level key '{key}'")
    if stats["version"] != 1:
        fail(f"{path}: unexpected version {stats['version']}")

    counters = stats["counters"]
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name} is not a non-negative int")
    for name in PROFILES[profile]["nonzero"]:
        if name not in counters:
            fail(f"{path}: counter {name} missing")
        if counters[name] == 0:
            fail(f"{path}: counter {name} is zero — the smoke run "
                 "did not exercise it")

    dists = stats["distributions"]
    for name in PROFILES[profile]["dists"]:
        if name not in dists:
            fail(f"{path}: distribution {name} missing")
        for field in DIST_FIELDS:
            if field not in dists[name]:
                fail(f"{path}: distribution {name} lacks '{field}'")

    if profile == "suite":
        jobs = counters["runner.jobs"]
        if dists["runner.shard_wall_us"]["count"] != jobs:
            fail(f"{path}: shard_wall_us count "
                 f"{dists['runner.shard_wall_us']['count']} != "
                 f"runner.jobs {jobs}")
    if profile == "vpd":
        # The daemon counts one merge per accepted delta; every merged
        # delta arrived as an inbound frame.
        merged = counters["serve.deltas_merged"]
        if dists["serve.merge_us"]["count"] != merged:
            fail(f"{path}: merge_us count "
                 f"{dists['serve.merge_us']['count']} != "
                 f"serve.deltas_merged {merged}")
        if counters["serve.frames_in"] < merged:
            fail(f"{path}: serve.frames_in {counters['serve.frames_in']} "
                 f"< serve.deltas_merged {merged}")
        if counters["serve.decode_errors"] != 0:
            fail(f"{path}: serve.decode_errors is "
                 f"{counters['serve.decode_errors']} — the loopback "
                 "smoke sent no corrupt frames")
    print(f"check_stats_json: {path} OK [{profile}] "
          f"({sum(1 for v in counters.values() if v)} nonzero counters)")


def check_trace(path, expect_workers=None):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    spans = [e for e in events if e.get("ph") == "X"]
    names = [e for e in events if e.get("ph") == "M"
             and e.get("name") == "thread_name"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    for e in spans:
        for key in ["name", "pid", "tid", "ts", "dur"]:
            if key not in e:
                fail(f"{path}: span missing '{key}': {e}")
    span_lanes = {e["tid"] for e in spans}
    named_lanes = {e["tid"] for e in names}
    if not span_lanes <= named_lanes:
        fail(f"{path}: lanes {span_lanes - named_lanes} have no "
             "thread_name metadata")
    if expect_workers is not None:
        workers = {t for t in span_lanes if t != 0}
        if not workers or max(workers) > expect_workers:
            fail(f"{path}: span lanes {sorted(span_lanes)} do not fit "
                 f"{expect_workers} workers")
    print(f"check_stats_json: {path} OK ({len(spans)} spans on "
          f"{len(span_lanes)} lanes)")


def main(argv):
    args = argv[1:]
    profile = "suite"
    if args and args[0] == "--profile":
        if len(args) < 2 or args[1] not in PROFILES:
            print(__doc__, file=sys.stderr)
            return 2
        profile = args[1]
        args = args[2:]
    if len(args) < 1 or len(args) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    check_stats(args[0], profile)
    if len(args) >= 2:
        workers = int(args[2]) if len(args) == 3 else None
        check_trace(args[1], workers)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
