#!/usr/bin/env python3
"""Validate vpprof observability output in CI.

Usage: check_stats_json.py STATS_JSON [TRACE_JSON]

Checks the stats sidecar against the schema documented in DESIGN.md
("Observability") and, when given, the trace file against the Chrome
trace-event shape Perfetto loads. Exits nonzero with a message on the
first violation.
"""

import json
import sys

# Counters the `--workload all --mode sampled` smoke run must actually
# exercise; everything else only has to be present.
REQUIRED_NONZERO = [
    "core.tnv.inserts",
    "core.tnv.evictions",
    "core.sampler.bursts",
    "core.sampler.convergences",
    "vpsim.insts",
    "runner.jobs",
]

REQUIRED_DISTS = ["runner.queue_wait_us", "runner.shard_wall_us"]
DIST_FIELDS = ["count", "min", "max", "mean", "p50", "p99"]


def fail(msg):
    print(f"check_stats_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(path):
    with open(path) as f:
        stats = json.load(f)

    for key in ["version", "counters", "gauges", "distributions"]:
        if key not in stats:
            fail(f"{path}: missing top-level key '{key}'")
    if stats["version"] != 1:
        fail(f"{path}: unexpected version {stats['version']}")

    counters = stats["counters"]
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name} is not a non-negative int")
    for name in REQUIRED_NONZERO:
        if name not in counters:
            fail(f"{path}: counter {name} missing")
        if counters[name] == 0:
            fail(f"{path}: counter {name} is zero — the smoke run "
                 "did not exercise it")

    dists = stats["distributions"]
    for name in REQUIRED_DISTS:
        if name not in dists:
            fail(f"{path}: distribution {name} missing")
        for field in DIST_FIELDS:
            if field not in dists[name]:
                fail(f"{path}: distribution {name} lacks '{field}'")
    jobs = counters["runner.jobs"]
    if dists["runner.shard_wall_us"]["count"] != jobs:
        fail(f"{path}: shard_wall_us count "
             f"{dists['runner.shard_wall_us']['count']} != "
             f"runner.jobs {jobs}")
    print(f"check_stats_json: {path} OK "
          f"({sum(1 for v in counters.values() if v)} nonzero counters, "
          f"{jobs} jobs)")


def check_trace(path, expect_workers=None):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    spans = [e for e in events if e.get("ph") == "X"]
    names = [e for e in events if e.get("ph") == "M"
             and e.get("name") == "thread_name"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    for e in spans:
        for key in ["name", "pid", "tid", "ts", "dur"]:
            if key not in e:
                fail(f"{path}: span missing '{key}': {e}")
    span_lanes = {e["tid"] for e in spans}
    named_lanes = {e["tid"] for e in names}
    if not span_lanes <= named_lanes:
        fail(f"{path}: lanes {span_lanes - named_lanes} have no "
             "thread_name metadata")
    if expect_workers is not None:
        workers = {t for t in span_lanes if t != 0}
        if not workers or max(workers) > expect_workers:
            fail(f"{path}: span lanes {sorted(span_lanes)} do not fit "
                 f"{expect_workers} workers")
    print(f"check_stats_json: {path} OK ({len(spans)} spans on "
          f"{len(span_lanes)} lanes)")


def main(argv):
    if len(argv) < 2 or len(argv) > 4:
        print(__doc__, file=sys.stderr)
        return 2
    check_stats(argv[1])
    if len(argv) >= 3:
        workers = int(argv[3]) if len(argv) == 4 else None
        check_trace(argv[2], workers)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
