#!/usr/bin/env python3
"""Validate vpprof/vpd observability output in CI.

Usage: check_stats_json.py [--profile NAME] [--metrics PROM_TEXT]
                           STATS_JSON [TRACE_JSON [WORKERS]]

Checks the stats sidecar against the schema documented in DESIGN.md
("Observability") and, when given, the trace file against the Chrome
trace-event shape Perfetto loads, and a Prometheus text exposition
(`GET /metrics` capture) against the 0.0.4 format. Exits nonzero with
a message on the first violation.

Profiles select which counters the run under test must have actually
exercised:
  suite  (default) — the `vpprof --workload all --mode sampled` smoke
  vpd              — the `vpd` loopback smoke (streaming aggregation)
  vpd-http         — a `vpd --http` smoke probed over HTTP; STATS_JSON
                     is a captured `GET /stats.json` body (the checker
                     unwraps its {"server":..., "stats":...} envelope)
  vpd-forward      — a mid-tier daemon in a vpd aggregation chain: it
                     must have both received forwarded partials (hello,
                     applied) and relayed its own upstream (partials,
                     flushes, acked)
  vpprof-adapt     — a `vpprof --workload ... --adapt` smoke: the
                     online engine must have converged, hot-patched at
                     least one guarded clone in, and dispatched calls
                     through its guard
"""

import json
import re
import sys

# Counters each smoke run must actually exercise; everything else only
# has to be present. The "suite" profile also cross-checks the shard
# wall-time distribution against runner.jobs.
PROFILES = {
    "suite": {
        "nonzero": [
            "core.tnv.inserts",
            "core.tnv.evictions",
            "core.sampler.bursts",
            "core.sampler.convergences",
            "vpsim.insts",
            "runner.jobs",
        ],
        "dists": ["runner.queue_wait_us", "runner.shard_wall_us"],
    },
    "vpd": {
        "nonzero": [
            "serve.accepts",
            "serve.frames_in",
            "serve.frames_out",
            "serve.bytes_in",
            "serve.bytes_out",
            "serve.deltas_merged",
            "serve.snapshots_saved",
        ],
        "dists": ["serve.merge_us"],
    },
    "vpd-http": {
        "nonzero": [
            "serve.accepts",
            "serve.frames_in",
            "serve.deltas_merged",
            "serve.http.accepts",
            "serve.http.requests",
            "serve.http.bytes_in",
            "serve.http.bytes_out",
        ],
        "dists": ["serve.merge_us", "serve.ack_us"],
    },
    "vpd-forward": {
        "nonzero": [
            "serve.accepts",
            "serve.frames_in",
            "serve.forward_hellos",
            "serve.forward_applied",
            "serve.forward_partials",
            "serve.forward_flushes",
            "serve.forward_acked",
        ],
        "dists": [],
    },
    "vpprof-adapt": {
        "nonzero": [
            "core.sampler.bursts",
            "core.sampler.convergences",
            "adapt.installs",
            "adapt.guard_hits",
            "vpsim.insts",
        ],
        "dists": [],
    },
}

DIST_FIELDS = ["count", "min", "max", "mean", "p50", "p99"]


def fail(msg):
    print(f"check_stats_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(path, profile):
    with open(path) as f:
        stats = json.load(f)

    if profile == "vpd-http":
        # /stats.json wraps the registry dump in a server envelope.
        for key in ["server", "stats"]:
            if key not in stats:
                fail(f"{path}: missing /stats.json key '{key}'")
        server = stats["server"]
        for key in ["producers", "deltas", "entities", "apply_seq",
                    "uptime_seconds"]:
            if key not in server:
                fail(f"{path}: /stats.json server lacks '{key}'")
        stats = stats["stats"]

    for key in ["version", "counters", "gauges", "distributions"]:
        if key not in stats:
            fail(f"{path}: missing top-level key '{key}'")
    if stats["version"] != 1:
        fail(f"{path}: unexpected version {stats['version']}")

    counters = stats["counters"]
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name} is not a non-negative int")
    for name in PROFILES[profile]["nonzero"]:
        if name not in counters:
            fail(f"{path}: counter {name} missing")
        if counters[name] == 0:
            fail(f"{path}: counter {name} is zero — the smoke run "
                 "did not exercise it")

    dists = stats["distributions"]
    for name in PROFILES[profile]["dists"]:
        if name not in dists:
            fail(f"{path}: distribution {name} missing")
        for field in DIST_FIELDS:
            if field not in dists[name]:
                fail(f"{path}: distribution {name} lacks '{field}'")

    if profile == "suite":
        jobs = counters["runner.jobs"]
        if dists["runner.shard_wall_us"]["count"] != jobs:
            fail(f"{path}: shard_wall_us count "
                 f"{dists['runner.shard_wall_us']['count']} != "
                 f"runner.jobs {jobs}")
    if profile == "vpd-http":
        # A read-only probe must not trip error paths; anything else
        # means the smoke's requests were mangled in flight.
        for name in ["serve.http.errors", "serve.http.timeouts"]:
            if counters.get(name, 0) != 0:
                fail(f"{path}: counter {name} is {counters[name]} — "
                     "the HTTP smoke sent only valid requests")
    if profile in ("vpd", "vpd-http"):
        # The daemon counts one merge per accepted delta; every merged
        # delta arrived as an inbound frame.
        merged = counters["serve.deltas_merged"]
        if dists["serve.merge_us"]["count"] != merged:
            fail(f"{path}: merge_us count "
                 f"{dists['serve.merge_us']['count']} != "
                 f"serve.deltas_merged {merged}")
        if counters["serve.frames_in"] < merged:
            fail(f"{path}: serve.frames_in {counters['serve.frames_in']} "
                 f"< serve.deltas_merged {merged}")
        if counters["serve.decode_errors"] != 0:
            fail(f"{path}: serve.decode_errors is "
                 f"{counters['serve.decode_errors']} — the loopback "
                 "smoke sent no corrupt frames")
    if profile == "vpprof-adapt":
        # Engine self-consistency: a re-specialization is an install
        # that followed a deopt, and a blacklist is only declared after
        # repeated deopts — the counters must respect both orderings.
        if counters.get("adapt.respecializations", 0) > \
                counters["adapt.installs"]:
            fail(f"{path}: adapt.respecializations "
                 f"{counters['adapt.respecializations']} > adapt.installs "
                 f"{counters['adapt.installs']}")
        if counters.get("adapt.blacklists", 0) > \
                counters.get("adapt.deopts", 0):
            fail(f"{path}: adapt.blacklists {counters['adapt.blacklists']}"
                 f" > adapt.deopts {counters.get('adapt.deopts', 0)}")
    if profile == "vpd-forward":
        # The forwarding chain carries only well-formed frames, and
        # nothing in the smoke may loop, clash, or hit the spill.
        for name in ["serve.decode_errors", "serve.forward_loops",
                     "serve.forward_id_clash",
                     "serve.forward_spilled"]:
            if counters.get(name, 0) != 0:
                fail(f"{path}: counter {name} is {counters[name]} — "
                     "the forward smoke chain must relay cleanly")
    print(f"check_stats_json: {path} OK [{profile}] "
          f"({sum(1 for v in counters.values() if v)} nonzero counters)")


SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[0-9.eE+-]+|nan|[+-]?inf)$")


def check_metrics(path):
    """Validate a Prometheus 0.0.4 text exposition (/metrics body)."""
    with open(path) as f:
        lines = f.read().splitlines()

    types = {}       # family -> declared type
    sampled = set()  # family names that actually carry samples
    for lineno, line in enumerate(lines, 1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "summary", "histogram"):
                fail(f"{path}:{lineno}: bad TYPE line: {line!r}")
            if parts[2] in types:
                fail(f"{path}:{lineno}: family {parts[2]} declared "
                     "twice")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{path}:{lineno}: unparseable sample: {line!r}")
        name = m.group("name")
        # Summary quantile samples use the family name itself; _sum
        # and _count suffixes belong to the family without them.
        family = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                family = name[:-len(suffix)]
        if family not in types:
            fail(f"{path}:{lineno}: sample {name} has no TYPE line")
        sampled.add(family)
        float(m.group("value").replace("inf", "Infinity")
              if "inf" in m.group("value") else m.group("value"))

    for family, kind in types.items():
        if family not in sampled:
            fail(f"{path}: family {family} ({kind}) has no samples")

    def value_of(sample_name):
        for line in lines:
            if line.startswith(sample_name + " "):
                return float(line.rsplit(" ", 1)[1])
        return None

    # The scrape itself increments this counter, so a live /metrics
    # body can never carry a zero here.
    reqs = value_of("vp_serve_http_requests_total")
    if reqs is None or reqs < 1:
        fail(f"{path}: vp_serve_http_requests_total missing or zero")
    for family, kind in types.items():
        if kind != "summary":
            continue
        for suffix in ("_sum", "_count"):
            if not any(line.startswith(family + suffix + " ")
                       for line in lines):
                fail(f"{path}: summary {family} lacks {suffix}")
    print(f"check_stats_json: {path} OK ({len(types)} families, "
          f"{sum(1 for k in types.values() if k == 'summary')} "
          "summaries)")


def check_trace(path, expect_workers=None):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    spans = [e for e in events if e.get("ph") == "X"]
    names = [e for e in events if e.get("ph") == "M"
             and e.get("name") == "thread_name"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    for e in spans:
        for key in ["name", "pid", "tid", "ts", "dur"]:
            if key not in e:
                fail(f"{path}: span missing '{key}': {e}")
    span_lanes = {e["tid"] for e in spans}
    named_lanes = {e["tid"] for e in names}
    if not span_lanes <= named_lanes:
        fail(f"{path}: lanes {span_lanes - named_lanes} have no "
             "thread_name metadata")
    if expect_workers is not None:
        workers = {t for t in span_lanes if t != 0}
        if not workers or max(workers) > expect_workers:
            fail(f"{path}: span lanes {sorted(span_lanes)} do not fit "
                 f"{expect_workers} workers")
    print(f"check_stats_json: {path} OK ({len(spans)} spans on "
          f"{len(span_lanes)} lanes)")


def main(argv):
    args = argv[1:]
    profile = "suite"
    metrics = None
    while args and args[0].startswith("--"):
        if args[0] == "--profile" and len(args) >= 2 \
                and args[1] in PROFILES:
            profile = args[1]
        elif args[0] == "--metrics" and len(args) >= 2:
            metrics = args[1]
        else:
            print(__doc__, file=sys.stderr)
            return 2
        args = args[2:]
    if len(args) < 1 or len(args) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    check_stats(args[0], profile)
    if metrics is not None:
        check_metrics(metrics)
    if len(args) >= 2:
        workers = int(args[2]) if len(args) == 3 else None
        check_trace(args[1], workers)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
