#!/usr/bin/env bash
# CI driver: build and run the test suite under sanitizers.
#
# Usage: tools/ci.sh [sanitizer...]
#
# With no arguments, runs the default CI matrix: a plain build plus
# AddressSanitizer and UndefinedBehaviorSanitizer builds running the
# full ctest suite, and a ThreadSanitizer build running the
# concurrency-sensitive legs (stats registry, trace collector,
# logging, thread pool, parallel runner). Pass sanitizer names (none,
# address, undefined, thread) to run a subset — `tools/ci.sh thread`
# runs only the TSan leg.
#
# The plain build also runs an observability smoke (a 4-job sampled
# suite profile whose stats/trace JSON is schema-checked by
# tools/check_stats_json.py) and a hot-path bench smoke gated against
# the committed BENCH_hotpath.json baseline by tools/bench_compare.py.
# The ASan and TSan builds additionally run
# a fixed-seed vpcheck differential smoke, so the random-program
# checkers execute under the sanitizers most likely to catch engine
# memory and threading bugs, plus a vpd loopback smoke: vpprof --emit
# streams a profile through a live vpd daemon over a unix socket and
# the served snapshot must be byte-identical to a local --save (the
# aggregation service's determinism contract under sanitizers). The
# ASan leg also runs a table_compression smoke gated against the
# committed BENCH_compression.json — bytes/entity is deterministic,
# so the density budget holds under the sanitizer too.
#
# Each configuration builds into build-ci-<name>/ so sanitized builds
# never pollute the main build/ tree.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${VP_CI_JOBS:-$(nproc)}"
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
    CONFIGS=(none address undefined thread)
fi

# Schema-check the stats/trace JSON that a parallel sampled suite run
# emits (the engine's own observability acceptance test).
observability_smoke() {
    local dir="$1"
    echo "=== [${dir}] observability smoke ==="
    "$dir/tools/vpprof" --workload all --jobs 4 --mode sampled \
        --stats-out "$dir/smoke-stats.json" \
        --trace-out "$dir/smoke-trace.json" > /dev/null
    python3 tools/check_stats_json.py \
        "$dir/smoke-stats.json" "$dir/smoke-trace.json" 4
}

# A short fixed-seed differential run: every trial and every checker,
# deterministic, so a sanitizer hit here is immediately reproducible
# with the printed seed.
vpcheck_smoke() {
    local dir="$1"
    echo "=== [${dir}] vpcheck smoke ==="
    "$dir/tools/vpcheck" --trials 20 --seed 1 --out "$dir"
}

# Measure the profiled-execution hot path (smoke shape: three
# workloads; 5 reps, best kept, so scheduler noise on a loaded CI box
# is filtered out) and gate on the committed baseline: a suite-geomean
# throughput drop beyond 15% fails the leg. Per-workload jitter only
# warns — see tools/bench_compare.py.
hotpath_compare_smoke() {
    local dir="$1"
    echo "=== [${dir}] hotpath bench compare ==="
    "$dir/bench/table_hotpath" --smoke --reps 5 \
        --out "$dir/bench-hotpath-smoke.json"
    python3 tools/bench_compare.py BENCH_hotpath.json \
        "$dir/bench-hotpath-smoke.json"
}

# Sanitized legs just drive the hot path end to end (threaded dispatch,
# batched events, arena-backed profilers) under the sanitizer — timing
# under ASan/TSan is meaningless, so no comparison.
hotpath_sanitizer_smoke() {
    local dir="$1"
    echo "=== [${dir}] hotpath smoke ==="
    "$dir/bench/table_hotpath" --smoke \
        --out "$dir/bench-hotpath-smoke.json" > /dev/null
}

# Drive both profile encodings end to end (encode, frame, decode
# self-check) and gate bytes/entity against the committed baseline.
# Unlike timing, byte counts are deterministic, so this gate holds
# even under a sanitizer — which is exactly where the codec's pointer
# arithmetic should be exercised.
compression_smoke() {
    local dir="$1"
    echo "=== [${dir}] compression bench compare ==="
    "$dir/bench/table_compression" --smoke \
        --out "$dir/bench-compression-smoke.json"
    python3 tools/bench_compare.py BENCH_compression.json \
        "$dir/bench-compression-smoke.json"
}

# Stream a profile through a live vpd daemon on a unix socket (no port
# clashes between CI legs) and require the served aggregate to be
# byte-identical to a local save; the daemon's stats JSON must show
# the serve counters moving, and nothing may have hit the spill path.
vpd_loopback_smoke() {
    local dir="$1"
    echo "=== [${dir}] vpd loopback smoke ==="
    local sock="$dir/vpd-smoke.sock"
    rm -f "$sock" "$dir"/vpd-{agg,served,local}.vprof \
        "$dir/vpd-stats.json" "$dir/vpd-smoke.spill"
    "$dir/tools/vpd" --listen "unix:$sock" \
        --snapshot-out "$dir/vpd-agg.vprof" \
        --stats-out "$dir/vpd-stats.json" > /dev/null &
    local vpd_pid=$!
    for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.1; done
    "$dir/tools/vpprof" --workload crc --emit "unix:$sock" \
        --emit-spill "$dir/vpd-smoke.spill" > /dev/null
    "$dir/tools/vpprof" --workload crc \
        --save "$dir/vpd-local.vprof" > /dev/null
    "$dir/tools/vpd" --connect "unix:$sock" --cmd snapshot \
        --out "$dir/vpd-served.vprof"
    "$dir/tools/vpd" --connect "unix:$sock" --cmd shutdown
    wait "$vpd_pid"
    cmp "$dir/vpd-served.vprof" "$dir/vpd-local.vprof"
    cmp "$dir/vpd-agg.vprof" "$dir/vpd-local.vprof"
    python3 tools/check_stats_json.py --profile vpd \
        "$dir/vpd-stats.json"
    if [ -e "$dir/vpd-smoke.spill" ]; then
        echo "vpd loopback smoke: unexpected spill file" >&2
        return 1
    fi
}

run_config() {
    local san="$1"
    local dir="build-ci-${san}"
    local flags=()
    if [ "$san" != "none" ]; then
        flags+=("-DVP_SANITIZE=${san}")
    fi

    echo "=== [${san}] configure ==="
    cmake -B "$dir" -S . "${flags[@]}"
    echo "=== [${san}] build ==="
    cmake --build "$dir" -j "$JOBS"
    echo "=== [${san}] test ==="
    if [ "$san" = "thread" ]; then
        # TSan leg: the concurrency-sensitive suites — the
        # stats/trace/logging tests, the pool, the runner, and the
        # streaming service (daemon loop + emitter threads).
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
            -R 'Stats|Trace|Logging|ThreadPool|ParallelRunner|Serve|Wire'
    else
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
    fi
    if [ "$san" = "none" ]; then
        observability_smoke "$dir"
        hotpath_compare_smoke "$dir"
    fi
    if [ "$san" = "address" ] || [ "$san" = "thread" ]; then
        vpcheck_smoke "$dir"
        vpd_loopback_smoke "$dir"
        hotpath_sanitizer_smoke "$dir"
    fi
    if [ "$san" = "address" ]; then
        compression_smoke "$dir"
    fi
}

for san in "${CONFIGS[@]}"; do
    case "$san" in
        none|address|undefined|thread) run_config "$san" ;;
        *)
            echo "unknown sanitizer '$san'" \
                 "(expected none, address, undefined, or thread)" >&2
            exit 2
            ;;
    esac
done

echo "=== CI passed: ${CONFIGS[*]} ==="
