#!/usr/bin/env bash
# CI driver: build and run the test suite under sanitizers.
#
# Usage: tools/ci.sh [--nightly] [sanitizer...]
#
# With no arguments, runs the default CI matrix: a plain build plus
# AddressSanitizer and UndefinedBehaviorSanitizer builds running the
# full ctest suite, and a ThreadSanitizer build running the
# concurrency-sensitive legs (stats registry, trace collector,
# logging, thread pool, parallel runner). Pass sanitizer names (none,
# address, undefined, thread) to run a subset — `tools/ci.sh thread`
# runs only the TSan leg.
#
# The plain build also runs an observability smoke (a 4-job sampled
# suite profile whose stats/trace JSON is schema-checked by
# tools/check_stats_json.py) and a hot-path bench smoke gated against
# the committed BENCH_hotpath.json baseline by tools/bench_compare.py.
# The ASan and TSan builds additionally run
# a fixed-seed vpcheck differential smoke, so the random-program
# checkers execute under the sanitizers most likely to catch engine
# memory and threading bugs, plus a vpd loopback smoke: vpprof --emit
# streams a profile through a live vpd daemon over a unix socket and
# the served snapshot must be byte-identical to a local --save (the
# aggregation service's determinism contract under sanitizers), and a
# vpd HTTP smoke: curl probes of the query plane (/metrics, /top,
# /producers, /watch, /stats.json) against a live daemon, with the
# /stats.json totals cross-checked against a control-plane QUERY
# reply and the captured bodies schema-checked by
# tools/check_stats_json.py --profile vpd-http. The same legs run a
# hierarchical-aggregation smoke (a 3-daemon leaf->mid->root forward
# chain whose root must be byte-identical to a local save, the mid's
# stats schema-checked with --profile vpd-forward) and a fixed-seed
# hostile-world soak scenario (vpcheck --checker soak: producer
# SIGKILLs, daemon kill/restore, corrupt frames, mixed wire versions,
# root byte-compared to the serial oracle). The ASan leg also
# runs a table_compression smoke gated against the committed
# BENCH_compression.json — bytes/entity is deterministic, so the
# density budget holds under the sanitizer too. The plain build gates
# a table_serve smoke (ingest ack p99 under HTTP load over baseline)
# against BENCH_serve.json, and a table_adaptive smoke (online
# adaptive specialization dynamic-instruction speedup) against
# BENCH_adaptive.json. The ASan and TSan legs also run an adaptive
# smoke: a short fixed-seed `vpcheck --checker adapt` differential run
# plus a `vpprof --adapt` workload whose stats JSON is checked with
# --profile vpprof-adapt.
#
# `--nightly` additionally runs the nightly-scale hostile-world soak
# (a 3-level vpd tree under hundreds of producer processes and a long
# fault schedule) on each selected leg. It takes minutes, so the
# default matrix skips it; the nightly pipeline invokes
# `tools/ci.sh --nightly none address`.
#
# Each configuration builds into build-ci-<name>/ so sanitized builds
# never pollute the main build/ tree.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${VP_CI_JOBS:-$(nproc)}"
NIGHTLY=0
if [ "${1:-}" = "--nightly" ]; then
    NIGHTLY=1
    shift
fi
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
    CONFIGS=(none address undefined thread)
fi

# Schema-check the stats/trace JSON that a parallel sampled suite run
# emits (the engine's own observability acceptance test).
observability_smoke() {
    local dir="$1"
    echo "=== [${dir}] observability smoke ==="
    "$dir/tools/vpprof" --workload all --jobs 4 --mode sampled \
        --stats-out "$dir/smoke-stats.json" \
        --trace-out "$dir/smoke-trace.json" > /dev/null
    python3 tools/check_stats_json.py \
        "$dir/smoke-stats.json" "$dir/smoke-trace.json" 4
}

# A short fixed-seed differential run: every trial and every checker,
# deterministic, so a sanitizer hit here is immediately reproducible
# with the printed seed.
vpcheck_smoke() {
    local dir="$1"
    echo "=== [${dir}] vpcheck smoke ==="
    "$dir/tools/vpcheck" --trials 20 --seed 1 --out "$dir"
}

# Measure the profiled-execution hot path (smoke shape: three
# workloads; 5 reps, best kept, so scheduler noise on a loaded CI box
# is filtered out) and gate the *slowdown ratios*
# (native/attached|full|sampled) on the committed baseline. Host
# co-tenancy on the single-core CI VM swings the same binary's
# absolute insts/s by 2x between runs, so bench_compare.py derives
# the same-run ratios instead — machine speed cancels, and a hot-path
# regression is exactly what moves them. Raw throughput drops only
# warn. The 25% budget covers the ~10% residual ratio jitter measured
# across co-tenancy extremes.
hotpath_compare_smoke() {
    local dir="$1"
    echo "=== [${dir}] hotpath bench compare ==="
    "$dir/bench/table_hotpath" --smoke --reps 5 \
        --out "$dir/bench-hotpath-smoke.json"
    python3 tools/bench_compare.py BENCH_hotpath.json \
        "$dir/bench-hotpath-smoke.json" --max-regress 25
}

# Sanitized legs just drive the hot path end to end (threaded dispatch,
# batched events, arena-backed profilers) under the sanitizer — timing
# under ASan/TSan is meaningless, so no comparison.
hotpath_sanitizer_smoke() {
    local dir="$1"
    echo "=== [${dir}] hotpath smoke ==="
    "$dir/bench/table_hotpath" --smoke \
        --out "$dir/bench-hotpath-smoke.json" > /dev/null
}

# Drive both profile encodings end to end (encode, frame, decode
# self-check) and gate bytes/entity against the committed baseline.
# Unlike timing, byte counts are deterministic, so this gate holds
# even under a sanitizer — which is exactly where the codec's pointer
# arithmetic should be exercised.
compression_smoke() {
    local dir="$1"
    echo "=== [${dir}] compression bench compare ==="
    "$dir/bench/table_compression" --smoke \
        --out "$dir/bench-compression-smoke.json"
    python3 tools/bench_compare.py BENCH_compression.json \
        "$dir/bench-compression-smoke.json"
}

# Stream a profile through a live vpd daemon on a unix socket (no port
# clashes between CI legs) and require the served aggregate to be
# byte-identical to a local save; the daemon's stats JSON must show
# the serve counters moving, and nothing may have hit the spill path.
vpd_loopback_smoke() {
    local dir="$1"
    echo "=== [${dir}] vpd loopback smoke ==="
    local sock="$dir/vpd-smoke.sock"
    rm -f "$sock" "$dir"/vpd-{agg,served,local}.vprof \
        "$dir/vpd-stats.json" "$dir/vpd-smoke.spill"
    "$dir/tools/vpd" --listen "unix:$sock" \
        --snapshot-out "$dir/vpd-agg.vprof" \
        --stats-out "$dir/vpd-stats.json" > /dev/null &
    local vpd_pid=$!
    for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.1; done
    "$dir/tools/vpprof" --workload crc --emit "unix:$sock" \
        --emit-spill "$dir/vpd-smoke.spill" > /dev/null
    "$dir/tools/vpprof" --workload crc \
        --save "$dir/vpd-local.vprof" > /dev/null
    "$dir/tools/vpd" --connect "unix:$sock" --cmd snapshot \
        --out "$dir/vpd-served.vprof"
    "$dir/tools/vpd" --connect "unix:$sock" --cmd shutdown
    wait "$vpd_pid"
    cmp "$dir/vpd-served.vprof" "$dir/vpd-local.vprof"
    cmp "$dir/vpd-agg.vprof" "$dir/vpd-local.vprof"
    python3 tools/check_stats_json.py --profile vpd \
        "$dir/vpd-stats.json"
    if [ -e "$dir/vpd-smoke.spill" ]; then
        echo "vpd loopback smoke: unexpected spill file" >&2
        return 1
    fi
}

# Chain three daemons (leaf -> mid -> root) over unix sockets, stream
# a profile into the leaf, and require the root aggregate to be
# byte-identical to a local --save — the hierarchical-aggregation
# determinism contract under the sanitizer. The mid daemon both
# receives forwarded partials and relays its own, so its stats JSON
# goes through the vpd-forward schema profile.
vpd_forward_smoke() {
    local dir="$1"
    echo "=== [${dir}] vpd forward smoke ==="
    local root_sock="$dir/vpd-fwd-root.sock"
    local mid_sock="$dir/vpd-fwd-mid.sock"
    local leaf_sock="$dir/vpd-fwd-leaf.sock"
    rm -f "$root_sock" "$mid_sock" "$leaf_sock" \
        "$dir"/vpd-fwd-{root,local}.vprof "$dir/vpd-fwd-mid-stats.json"
    "$dir/tools/vpd" --listen "unix:$root_sock" > /dev/null &
    local root_pid=$!
    "$dir/tools/vpd" --listen "unix:$mid_sock" \
        --forward "unix:$root_sock" --forward-id 100 \
        --forward-interval 0.1 \
        --stats-out "$dir/vpd-fwd-mid-stats.json" > /dev/null &
    local mid_pid=$!
    "$dir/tools/vpd" --listen "unix:$leaf_sock" \
        --forward "unix:$mid_sock" --forward-id 200 \
        --forward-interval 0.1 > /dev/null &
    local leaf_pid=$!
    for _ in $(seq 100); do
        [ -S "$root_sock" ] && [ -S "$mid_sock" ] && \
            [ -S "$leaf_sock" ] && break
        sleep 0.1
    done
    "$dir/tools/vpprof" --workload crc --emit "unix:$leaf_sock" \
        > /dev/null
    "$dir/tools/vpprof" --workload crc \
        --save "$dir/vpd-fwd-local.vprof" > /dev/null
    # FLUSH kicks the relay on each hop; then poll the root until the
    # partials have climbed the tree (the relay acks asynchronously).
    local converged=1
    for _ in $(seq 100); do
        "$dir/tools/vpd" --connect "unix:$leaf_sock" --cmd flush
        "$dir/tools/vpd" --connect "unix:$mid_sock" --cmd flush
        "$dir/tools/vpd" --connect "unix:$root_sock" --cmd snapshot \
            --out "$dir/vpd-fwd-root.vprof"
        if cmp -s "$dir/vpd-fwd-root.vprof" "$dir/vpd-fwd-local.vprof"
        then
            converged=0
            break
        fi
        sleep 0.1
    done
    if [ "$converged" -ne 0 ]; then
        echo "vpd forward smoke: root never converged to the local" \
             "profile" >&2
        return 1
    fi
    "$dir/tools/vpd" --connect "unix:$leaf_sock" --cmd shutdown
    wait "$leaf_pid"
    "$dir/tools/vpd" --connect "unix:$mid_sock" --cmd shutdown
    wait "$mid_pid"
    "$dir/tools/vpd" --connect "unix:$root_sock" --cmd shutdown
    wait "$root_pid"
    python3 tools/check_stats_json.py --profile vpd-forward \
        "$dir/vpd-fwd-mid-stats.json"
}

# One fixed-seed hostile-world soak scenario (3-daemon tree, producer
# SIGKILLs, daemon kill/restore, corrupt frames, mixed wire versions)
# sized for a sanitized build: the fault machinery and the
# byte-identity assertion run end to end, deterministically.
soak_smoke() {
    local dir="$1"
    echo "=== [${dir}] vpcheck soak smoke ==="
    "$dir/tools/vpcheck" --checker soak --seed 7 \
        --soak-producers 4 --soak-deltas 2 --soak-events 4 \
        --soak-dir "$dir/soak-smoke"
}

# Nightly-scale soak: a full 3-level tree fed by hundreds of producer
# processes under a long fault schedule (producer SIGKILLs, daemon
# kill/restore, corrupt frames, mixed wire versions). Still
# deterministic per seed, but minutes long — only the --nightly
# pipeline runs it.
nightly_soak() {
    local dir="$1"
    echo "=== [${dir}] vpcheck nightly soak ==="
    "$dir/tools/vpcheck" --checker soak --seed 11 \
        --soak-producers 200 --soak-levels 3 --soak-leaves 3 \
        --soak-deltas 3 --soak-events 64 \
        --soak-dir "$dir/soak-nightly"
}

# Online adaptive specialization under the sanitizer: a short
# fixed-seed differential run (adaptive engine vs plain interpretation
# on phase-shifting programs), then a real workload under --adapt
# whose adapt.* counters are schema-checked. The engine grows the
# program and patches dispatch mid-run, which is exactly the pointer
# traffic ASan/TSan should see.
adapt_smoke() {
    local dir="$1"
    echo "=== [${dir}] adapt smoke ==="
    "$dir/tools/vpcheck" --checker adapt --trials 10 --seed 1 \
        --out "$dir"
    "$dir/tools/vpprof" --workload matmul --adapt \
        --stats-out "$dir/adapt-stats.json" > /dev/null
    python3 tools/check_stats_json.py --profile vpprof-adapt \
        "$dir/adapt-stats.json"
}

# Probe the HTTP query plane of a live daemon: every read endpoint
# must answer, /watch must report the applied delta, and the
# /stats.json server totals must agree with what the binary
# control-plane QUERY verb reports — one daemon, two front ends, one
# truth. The captured /metrics and /stats.json bodies go through the
# schema checker's vpd-http profile.
vpd_http_smoke() {
    local dir="$1"
    echo "=== [${dir}] vpd http smoke ==="
    local sock="$dir/vpd-http-smoke.sock"
    local log="$dir/vpd-http-smoke.log"
    rm -f "$sock" "$log" "$dir"/vpd-http-*.json \
        "$dir/vpd-http-metrics.txt" "$dir/vpd-http-query.txt"
    "$dir/tools/vpd" --listen "unix:$sock" --http 127.0.0.1:0 \
        > "$log" &
    local vpd_pid=$!
    local url=""
    for _ in $(seq 100); do
        url="$(sed -n 's/^vpd: http on //p' "$log" | head -n 1)"
        [ -n "$url" ] && [ -S "$sock" ] && break
        sleep 0.1
    done
    if [ -z "$url" ]; then
        echo "vpd http smoke: daemon never bound an HTTP port" >&2
        return 1
    fi
    "$dir/tools/vpprof" --workload crc --emit "unix:$sock" > /dev/null
    curl -fsS "http://$url/metrics" > "$dir/vpd-http-metrics.txt"
    curl -fsS "http://$url/top?n=5&by=invariance" \
        > "$dir/vpd-http-top.json"
    grep -q '"entries":\[' "$dir/vpd-http-top.json"
    curl -fsS "http://$url/producers" > "$dir/vpd-http-producers.json"
    grep -q '"producers":\[' "$dir/vpd-http-producers.json"
    curl -fsS "http://$url/watch?since=0" > "$dir/vpd-http-watch.json"
    grep -q '"changed":true' "$dir/vpd-http-watch.json"
    curl -fsS "http://$url/stats.json" > "$dir/vpd-http-stats.json"
    "$dir/tools/vpd" --connect "unix:$sock" --cmd query \
        > "$dir/vpd-http-query.txt"
    python3 - "$dir/vpd-http-stats.json" "$dir/vpd-http-query.txt" \
        <<'PYEOF'
import json, sys
server = json.load(open(sys.argv[1]))["server"]
control = dict(line.split() for line in open(sys.argv[2])
               if line.strip())
for key in ("producers", "deltas", "entities", "dropped_stores",
            "dropped_loads"):
    if server[key] != int(control[key]):
        sys.exit(f"vpd http smoke: {key}: /stats.json {server[key]} "
                 f"!= QUERY {control[key]}")
print("vpd http smoke: /stats.json totals match the QUERY reply")
PYEOF
    python3 tools/check_stats_json.py --profile vpd-http \
        --metrics "$dir/vpd-http-metrics.txt" "$dir/vpd-http-stats.json"
    "$dir/tools/vpd" --connect "unix:$sock" --cmd shutdown
    wait "$vpd_pid"
}

# Drive ingest with and without concurrent HTTP query load and gate
# the ack-latency interference ratio against the committed baseline.
# The ratio is loaded-over-bare p99, so it is machine-speed
# invariant; only timing-meaningful (unsanitized) legs run it. The
# budget is deliberately loose: on a small CI box the ratio's tail is
# scheduler timeslices, so the gate is there to catch
# order-of-magnitude interference regressions (a broken response
# cache or fold), not single-digit drift.
serve_compare_smoke() {
    local dir="$1"
    echo "=== [${dir}] serve bench compare ==="
    "$dir/bench/table_serve" --smoke \
        --out "$dir/bench-serve-smoke.json"
    python3 tools/bench_compare.py BENCH_serve.json \
        "$dir/bench-serve-smoke.json" --max-regress 200
}

# Gate the online adaptive engine's dynamic-instruction speedup on an
# invariant-heavy workload against the committed baseline. Retired
# instruction counts are deterministic (like the compression byte
# counts), so the gate is noise-free even on a loaded box.
adaptive_compare_smoke() {
    local dir="$1"
    echo "=== [${dir}] adaptive bench compare ==="
    "$dir/bench/table_adaptive" --smoke \
        --out "$dir/bench-adaptive-smoke.json"
    python3 tools/bench_compare.py BENCH_adaptive.json \
        "$dir/bench-adaptive-smoke.json"
}

run_config() {
    local san="$1"
    local dir="build-ci-${san}"
    local flags=()
    if [ "$san" != "none" ]; then
        flags+=("-DVP_SANITIZE=${san}")
    fi

    echo "=== [${san}] configure ==="
    cmake -B "$dir" -S . "${flags[@]}"
    echo "=== [${san}] build ==="
    cmake --build "$dir" -j "$JOBS"
    echo "=== [${san}] test ==="
    if [ "$san" = "thread" ]; then
        # TSan leg: the concurrency-sensitive suites — the
        # stats/trace/logging tests, the pool, the runner, and the
        # streaming service (daemon loop + emitter threads + HTTP
        # query plane).
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
            -R 'Stats|Trace|Logging|ThreadPool|ParallelRunner|Serve|Wire|Http'
    else
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
    fi
    if [ "$san" = "none" ]; then
        observability_smoke "$dir"
        hotpath_compare_smoke "$dir"
        serve_compare_smoke "$dir"
        adaptive_compare_smoke "$dir"
    fi
    if [ "$san" = "address" ] || [ "$san" = "thread" ]; then
        vpcheck_smoke "$dir"
        vpd_loopback_smoke "$dir"
        vpd_forward_smoke "$dir"
        vpd_http_smoke "$dir"
        soak_smoke "$dir"
        adapt_smoke "$dir"
        hotpath_sanitizer_smoke "$dir"
    fi
    if [ "$san" = "address" ]; then
        compression_smoke "$dir"
    fi
    if [ "$NIGHTLY" -eq 1 ]; then
        nightly_soak "$dir"
    fi
}

for san in "${CONFIGS[@]}"; do
    case "$san" in
        none|address|undefined|thread) run_config "$san" ;;
        *)
            echo "unknown sanitizer '$san'" \
                 "(expected none, address, undefined, or thread)" >&2
            exit 2
            ;;
    esac
done

echo "=== CI passed: ${CONFIGS[*]} ==="
