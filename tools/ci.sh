#!/usr/bin/env bash
# CI driver: build and run the test suite under sanitizers.
#
# Usage: tools/ci.sh [sanitizer...]
#
# With no arguments, runs the default CI matrix: a plain build plus
# AddressSanitizer and UndefinedBehaviorSanitizer builds, each running
# the full ctest suite. Pass sanitizer names (none, address, undefined,
# thread) to run a subset — e.g. `tools/ci.sh thread` validates the
# sharded parallel profiling engine under ThreadSanitizer.
#
# Each configuration builds into build-ci-<name>/ so sanitized builds
# never pollute the main build/ tree.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${VP_CI_JOBS:-$(nproc)}"
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
    CONFIGS=(none address undefined)
fi

run_config() {
    local san="$1"
    local dir="build-ci-${san}"
    local flags=()
    if [ "$san" != "none" ]; then
        flags+=("-DVP_SANITIZE=${san}")
    fi

    echo "=== [${san}] configure ==="
    cmake -B "$dir" -S . "${flags[@]}"
    echo "=== [${san}] build ==="
    cmake --build "$dir" -j "$JOBS"
    echo "=== [${san}] test ==="
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

for san in "${CONFIGS[@]}"; do
    case "$san" in
        none|address|undefined|thread) run_config "$san" ;;
        *)
            echo "unknown sanitizer '$san'" \
                 "(expected none, address, undefined, or thread)" >&2
            exit 2
            ;;
    esac
done

echo "=== CI passed: ${CONFIGS[*]} ==="
