#!/usr/bin/env bash
# CI driver: build and run the test suite under sanitizers.
#
# Usage: tools/ci.sh [sanitizer...]
#
# With no arguments, runs the default CI matrix: a plain build plus
# AddressSanitizer and UndefinedBehaviorSanitizer builds running the
# full ctest suite, and a ThreadSanitizer build running the
# concurrency-sensitive legs (stats registry, trace collector,
# logging, thread pool, parallel runner). Pass sanitizer names (none,
# address, undefined, thread) to run a subset — `tools/ci.sh thread`
# runs only the TSan leg.
#
# The plain build also runs an observability smoke: a 4-job sampled
# suite profile whose stats/trace JSON is schema-checked by
# tools/check_stats_json.py. The ASan and TSan builds additionally run
# a fixed-seed vpcheck differential smoke, so the random-program
# checkers execute under the sanitizers most likely to catch engine
# memory and threading bugs.
#
# Each configuration builds into build-ci-<name>/ so sanitized builds
# never pollute the main build/ tree.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${VP_CI_JOBS:-$(nproc)}"
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
    CONFIGS=(none address undefined thread)
fi

# Schema-check the stats/trace JSON that a parallel sampled suite run
# emits (the engine's own observability acceptance test).
observability_smoke() {
    local dir="$1"
    echo "=== [${dir}] observability smoke ==="
    "$dir/tools/vpprof" --workload all --jobs 4 --mode sampled \
        --stats-out "$dir/smoke-stats.json" \
        --trace-out "$dir/smoke-trace.json" > /dev/null
    python3 tools/check_stats_json.py \
        "$dir/smoke-stats.json" "$dir/smoke-trace.json" 4
}

# A short fixed-seed differential run: every trial and every checker,
# deterministic, so a sanitizer hit here is immediately reproducible
# with the printed seed.
vpcheck_smoke() {
    local dir="$1"
    echo "=== [${dir}] vpcheck smoke ==="
    "$dir/tools/vpcheck" --trials 20 --seed 1 --out "$dir"
}

run_config() {
    local san="$1"
    local dir="build-ci-${san}"
    local flags=()
    if [ "$san" != "none" ]; then
        flags+=("-DVP_SANITIZE=${san}")
    fi

    echo "=== [${san}] configure ==="
    cmake -B "$dir" -S . "${flags[@]}"
    echo "=== [${san}] build ==="
    cmake --build "$dir" -j "$JOBS"
    echo "=== [${san}] test ==="
    if [ "$san" = "thread" ]; then
        # TSan leg: the concurrency-sensitive suites — the new
        # stats/trace/logging tests plus the pool and the runner.
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
            -R 'Stats|Trace|Logging|ThreadPool|ParallelRunner'
    else
        ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
    fi
    if [ "$san" = "none" ]; then
        observability_smoke "$dir"
    fi
    if [ "$san" = "address" ] || [ "$san" = "thread" ]; then
        vpcheck_smoke "$dir"
    fi
}

for san in "${CONFIGS[@]}"; do
    case "$san" in
        none|address|undefined|thread) run_config "$san" ;;
        *)
            echo "unknown sanitizer '$san'" \
                 "(expected none, address, undefined, or thread)" >&2
            exit 2
            ;;
    esac
done

echo "=== CI passed: ${CONFIGS[*]} ==="
