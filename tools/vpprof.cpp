/**
 * @file
 * vpprof — the command-line face of the library, in the spirit of an
 * ATOM tool driver: profile a bundled workload or a user-supplied
 * VPSim assembly file, print reports, save/compare snapshots.
 *
 * Usage:
 *   vpprof --workload lisp [--dataset train] [options]
 *   vpprof --workload all [--jobs N] [options]
 *   vpprof --asm prog.vasm [options]
 *   vpprof --compare a.vprof b.vprof
 *   vpprof --list
 *
 * Options:
 *   --mode full|sampled|random   profiling mode (default full)
 *   --rate P                     random-mode sampling rate (default 1/64)
 *   --target writes|loads        instructions to profile (default writes)
 *   --jobs N|auto                parallel shards for --workload all
 *                                (default 1 = sequential, auto = one
 *                                per hardware thread)
 *   --mem                        also profile memory locations
 *   --params                     also profile procedure parameters
 *   --strides                    track successive-value deltas
 *   --regs                       also profile architectural registers
 *   --top N                      rows per report (default 15)
 *   --min-inv F                  semi-invariant threshold (default 0.8)
 *   --save FILE                  write the profile snapshot
 *   --disasm                     dump the program before running
 *   --stats[=text|json]          print engine runtime stats (default
 *                                text) to stdout after the run
 *   --stats-out FILE             write runtime stats as JSON to FILE
 *   --trace-out FILE             write a Chrome trace-event timeline
 *                                (load in Perfetto / chrome://tracing)
 *   --emit ADDR                  stream the profile snapshot to a vpd
 *                                aggregation daemon ("host:port" or
 *                                "unix:PATH") instead of/besides
 *                                printing; unreachable daemons spill
 *                                to --emit-spill, never lose the run
 *   --emit-id N                  producer id for --emit (default 1);
 *                                concurrent emitters need distinct ids
 *   --emit-spill FILE            local fallback for unacknowledged
 *                                deltas (default vpprof.spill)
 *   --adapt[=F]                  run under the online adaptive
 *                                specialization engine (src/adapt):
 *                                procedures whose profiled arguments
 *                                converge with Inv-Top >= F (default
 *                                0.90) are specialized mid-run behind
 *                                a guard; prints the per-site report.
 *                                With --save/--emit the per-argument
 *                                profiles travel under tagged entity
 *                                keys, so a vpd aggregate can pre-seed
 *                                other replicas (fleet-wide PGO)
 *   --adapt-from ADDR            fetch a vpd aggregate snapshot and
 *                                pre-seed specialization from its
 *                                tagged entities before the first
 *                                instruction (implies --adapt)
 *
 * `--workload all` profiles every bundled workload, one independent
 * shard per (workload, dataset) job, fanned out over `--jobs` worker
 * threads, and prints per-workload reports in canonical order plus a
 * suite summary — output is byte-identical for any --jobs value.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "adapt/engine.hpp"
#include "core/instruction_profiler.hpp"
#include "core/memory_profiler.hpp"
#include "core/parameter_profiler.hpp"
#include "core/register_profiler.hpp"
#include "core/report.hpp"
#include "core/snapshot.hpp"
#include "serve/client.hpp"
#include "support/file.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"
#include "support/stats_registry.hpp"
#include "support/trace.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/disasm.hpp"
#include "workloads/parallel_runner.hpp"
#include "workloads/workload.hpp"

namespace
{

struct Options
{
    std::string workload;
    std::string dataset = "train";
    std::string asmFile;
    std::string mode = "full";
    double rate = 1.0 / 64.0;
    std::string target = "writes";
    unsigned jobs = 1;
    bool mem = false;
    bool params = false;
    bool strides = false;
    bool regs = false;
    std::size_t top = 15;
    double minInv = 0.8;
    std::string saveFile;
    bool disasm = false;
    std::string compareA, compareB;
    bool list = false;
    /** "" = no stdout stats dump; otherwise "text" or "json". */
    std::string statsFormat;
    std::string statsOut;
    std::string traceOut;
    std::string emitAddr;
    std::uint64_t emitId = 1;
    std::string emitSpill = "vpprof.spill";
    bool adapt = false;
    double adaptThreshold = 0.90;
    std::string adaptFrom;

    bool
    wantStats() const
    {
        return !statsFormat.empty() || !statsOut.empty();
    }
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vpprof --workload NAME|all [--dataset D] [options]\n"
        "       vpprof --asm FILE.vasm [options]\n"
        "       vpprof --compare A.vprof B.vprof\n"
        "       vpprof --list\n"
        "options: --mode full|sampled|random, --rate P,\n"
        "         --target writes|loads, --jobs N|auto, --mem,\n"
        "         --params, --strides, --regs, --top N, --min-inv F,\n"
        "         --save FILE, --disasm, --stats[=text|json],\n"
        "         --stats-out FILE, --trace-out FILE,\n"
        "         --emit ADDR, --emit-id N, --emit-spill FILE,\n"
        "         --adapt[=THRESHOLD], --adapt-from ADDR\n";
    std::exit(2);
}

/**
 * Strict worker-count parsing: a positive integer or "auto" (one
 * worker per hardware thread). Zero, negative, and non-numeric counts
 * are configuration errors, not silent fallbacks.
 */
unsigned
parseJobs(const char *text, const char *what)
{
    const std::string s = text;
    if (s == "auto")
        return 0; // ParallelRunner: 0 = one per hardware thread
    char *end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        vp_fatal("%s: '%s' is not a job count (use a positive "
                 "integer or 'auto')",
                 what, s.c_str());
    if (v <= 0)
        vp_fatal("%s must be a positive integer (got %s); use 'auto' "
                 "for one worker per hardware thread",
                 what, s.c_str());
    return static_cast<unsigned>(v);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload")
            opt.workload = need(i);
        else if (arg == "--dataset")
            opt.dataset = need(i);
        else if (arg == "--asm")
            opt.asmFile = need(i);
        else if (arg == "--mode")
            opt.mode = need(i);
        else if (arg == "--rate")
            opt.rate = std::atof(need(i));
        else if (arg == "--target")
            opt.target = need(i);
        else if (arg == "--jobs")
            opt.jobs = parseJobs(need(i), "--jobs");
        else if (arg == "--mem")
            opt.mem = true;
        else if (arg == "--params")
            opt.params = true;
        else if (arg == "--strides")
            opt.strides = true;
        else if (arg == "--regs")
            opt.regs = true;
        else if (arg == "--top")
            opt.top = static_cast<std::size_t>(std::atoi(need(i)));
        else if (arg == "--min-inv")
            opt.minInv = std::atof(need(i));
        else if (arg == "--save")
            opt.saveFile = need(i);
        else if (arg == "--disasm")
            opt.disasm = true;
        else if (arg == "--compare") {
            opt.compareA = need(i);
            opt.compareB = need(i);
        } else if (arg == "--list")
            opt.list = true;
        else if (arg == "--stats")
            opt.statsFormat = "text";
        else if (arg.rfind("--stats=", 0) == 0) {
            opt.statsFormat = arg.substr(8);
            if (opt.statsFormat != "text" && opt.statsFormat != "json")
                usage();
        } else if (arg == "--stats-out")
            opt.statsOut = need(i);
        else if (arg == "--trace-out")
            opt.traceOut = need(i);
        else if (arg == "--emit")
            opt.emitAddr = need(i);
        else if (arg == "--emit-id") {
            const long long v = std::atoll(need(i));
            if (v <= 0)
                vp_fatal("--emit-id must be a positive integer");
            opt.emitId = static_cast<std::uint64_t>(v);
        } else if (arg == "--emit-spill")
            opt.emitSpill = need(i);
        else if (arg == "--adapt")
            opt.adapt = true;
        else if (arg.rfind("--adapt=", 0) == 0) {
            opt.adapt = true;
            opt.adaptThreshold = std::atof(arg.c_str() + 8);
            if (opt.adaptThreshold <= 0.0 || opt.adaptThreshold > 1.0)
                vp_fatal("--adapt threshold must be in (0,1], got "
                         "'%s'", arg.c_str() + 8);
        } else if (arg == "--adapt-from") {
            opt.adaptFrom = need(i);
            opt.adapt = true;
        } else
            usage();
    }
    return opt;
}

int
runCompare(const Options &opt)
{
    std::ifstream fa(opt.compareA), fb(opt.compareB);
    if (!fa || !fb)
        vp_fatal("cannot open snapshot files");
    const auto a = core::ProfileSnapshot::load(fa);
    const auto b = core::ProfileSnapshot::load(fb);
    const auto cmp = core::compareSnapshots(a, b);
    std::cout << "entities: " << a.size() << " vs " << b.size()
              << ", common " << cmp.commonEntities << "\n";
    std::cout << "InvTop correlation:        " << cmp.invTopCorrelation
              << "\n";
    std::cout << "mean |dInvTop|:            "
              << cmp.meanAbsInvTopDelta * 100 << "%\n";
    std::cout << "top-value transfer:        "
              << cmp.topValueTransfer * 100 << "%\n";
    std::cout << "  (semi-invariant only):   "
              << cmp.topValueTransferInvariant * 100 << "% over "
              << cmp.invariantEntities << " entities\n";
    return 0;
}

core::InstProfilerConfig
profilerConfig(const Options &opt)
{
    core::InstProfilerConfig icfg;
    if (opt.mode == "full")
        icfg.mode = core::ProfileMode::Full;
    else if (opt.mode == "sampled")
        icfg.mode = core::ProfileMode::Sampled;
    else if (opt.mode == "random")
        icfg.mode = core::ProfileMode::Random;
    else
        usage();
    icfg.randomRate = opt.rate;
    icfg.profile.trackStrides = opt.strides;
    return icfg;
}

/**
 * Stream snapshots to the vpd daemon named by --emit, one delta per
 * snapshot. Spills locally (EmitterConfig::spillPath) when the daemon
 * is unreachable, so a dead daemon never loses the run's profile.
 */
void
emitSnapshots(const Options &opt,
              std::vector<core::ProfileSnapshot> deltas)
{
    vp::serve::EmitterConfig ecfg;
    ecfg.addr = opt.emitAddr;
    ecfg.producerId = opt.emitId;
    ecfg.spillPath = opt.emitSpill;
    vp::serve::ProfileEmitter emitter(ecfg);
    for (auto &delta : deltas)
        if (!delta.entities.empty())
            emitter.emit(std::move(delta));
    if (emitter.close()) {
        std::cout << "\nprofile streamed to " << opt.emitAddr << " ("
                  << emitter.ackedDeltas() << " delta(s) acked, "
                  << "producer id " << opt.emitId << ")\n";
    } else {
        std::cout << "\nvpd at " << opt.emitAddr << " unreachable; "
                  << emitter.spilledDeltas()
                  << " delta(s) spilled to " << opt.emitSpill << "\n";
    }
}

/**
 * Entity key for suite-wide emission: the low 32 bits keep the pc,
 * the high 32 take an FNV-1a hash of "workload:dataset" so different
 * programs' pcs never collide in the daemon's aggregate.
 */
std::uint64_t
suiteEntityKey(const std::string &workload, const std::string &dataset,
               std::uint64_t pc)
{
    const std::string tag = workload + ":" + dataset;
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : tag) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return (h << 32) | (pc & 0xFFFFFFFFull);
}

/**
 * --workload all: one shard per workload, fanned out over --jobs
 * worker threads; reports printed in canonical order so the output is
 * identical for any job count.
 */
int
runSuite(const Options &opt)
{
    if (opt.mem || opt.params || opt.regs || opt.strides ||
        opt.disasm || opt.adapt || !opt.saveFile.empty())
        vp_fatal("--workload all supports only --mode/--rate/--target/"
                 "--jobs/--dataset/--top/--min-inv");
    if (opt.target != "writes" && opt.target != "loads")
        usage();

    const auto jobs = workloads::suiteJobs(
        opt.dataset, opt.target == "loads", profilerConfig(opt));
    workloads::ParallelRunner runner(opt.jobs);
    const auto results = runner.run(jobs);

    vp::TextTable suite({"program", "insts(M)", "profiled%", "LVP%",
                         "InvTop%", "InvAll%"});
    for (const auto &res : results) {
        std::cout << "=== " << res.workload->name() << " ("
                  << res.dataset << ") ===\n";
        std::cout << "executed " << res.run.dynamicInsts
                  << " instructions (" << res.run.dynamicLoads
                  << " loads, " << res.run.dynamicStores
                  << " stores); profiled " << res.profiledExecutions
                  << " of " << res.totalExecutions << " values ("
                  << res.fractionProfiled * 100 << "%)\n\n";
        const vpsim::Program &prog = res.workload->program();
        core::snapshotInstructionReport(res.snapshot, prog, opt.top)
            .print(std::cout, "value profile (most-executed first)");
        std::cout << "\n";
        core::snapshotSemiInvariantReport(res.snapshot, prog,
                                          opt.minInv, 100, opt.top)
            .print(std::cout, "semi-invariant instructions");
        std::cout << "\n";

        suite.row()
            .cell(res.workload->name())
            .cell(static_cast<double>(res.run.dynamicInsts) / 1e6, 2)
            .percent(res.fractionProfiled)
            .percent(res.lvp)
            .percent(res.invTop)
            .percent(res.invAll);
    }
    suite.print(std::cout,
                "suite summary (execution-weighted per workload)");

    if (!opt.emitAddr.empty()) {
        // One delta per (workload, dataset) job, keys namespaced so
        // the daemon aggregate holds the whole suite at once.
        std::vector<core::ProfileSnapshot> deltas;
        for (const auto &res : results) {
            core::ProfileSnapshot keyed;
            for (const auto &[pc, summary] : res.snapshot.entities)
                keyed.entities.emplace(
                    suiteEntityKey(res.workload->name(), res.dataset,
                                   pc),
                    summary);
            deltas.push_back(std::move(keyed));
        }
        emitSnapshots(opt, std::move(deltas));
    }
    return 0;
}

/**
 * Dump whatever observability output was requested. Stats accumulate
 * in the global registry (worker shards merge into it via the
 * runner), the trace in the global collector.
 */
void
emitObservability(const Options &opt)
{
    // Both files are written atomically (tmp + rename): a vpprof run
    // killed mid-dump leaves a consumer either the previous complete
    // file or none, never a torn JSON document.
    std::string error;
    if (opt.wantStats()) {
        const vp::stats::Registry &reg = vp::stats::global();
        if (!opt.statsOut.empty()) {
            std::ostringstream body;
            reg.writeJson(body);
            if (!vp::atomicWriteFile(opt.statsOut, body.str(), error))
                vp_fatal("%s", error.c_str());
        }
        if (opt.statsFormat == "json")
            reg.writeJson(std::cout);
        else if (opt.statsFormat == "text")
            reg.writeText(std::cout);
    }
    if (!opt.traceOut.empty()) {
        std::ostringstream body;
        vp::trace::TraceCollector::global().writeJson(body);
        if (!vp::atomicWriteFile(opt.traceOut, body.str(), error))
            vp_fatal("%s", error.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    if (opt.list) {
        for (const auto *w : workloads::allWorkloads())
            std::cout << w->name() << " - " << w->description()
                      << "\n";
        return 0;
    }
    if (!opt.compareA.empty())
        return runCompare(opt);

    if (opt.wantStats())
        vp::stats::setEnabled(true);
    if (!opt.traceOut.empty())
        vp::trace::TraceCollector::global().setEnabled(true);

    if (opt.workload == "all") {
        const int rc = runSuite(opt);
        emitObservability(opt);
        return rc;
    }
    if (opt.workload.empty() == opt.asmFile.empty())
        usage(); // exactly one source required

    // --- obtain the program -------------------------------------------
    const workloads::Workload *workload = nullptr;
    vpsim::Program own_program;
    const vpsim::Program *prog = nullptr;
    if (!opt.workload.empty()) {
        workload = &workloads::findWorkload(opt.workload);
        prog = &workload->program();
    } else {
        std::ifstream in(opt.asmFile);
        if (!in)
            vp_fatal("cannot open '%s'", opt.asmFile.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        own_program = vpsim::assemble(ss.str());
        prog = &own_program;
    }

    // The adaptive engine grows the program mid-run, so it needs its
    // own mutable copy (bundled workloads hand out a shared const
    // program).
    if (opt.adapt && workload) {
        own_program = *prog;
        prog = &own_program;
    }

    if (opt.disasm) {
        std::cout << vpsim::disassembleRange(
                         *prog, 0,
                         static_cast<std::uint32_t>(prog->numInsts()))
                  << "\n";
    }

    // --- set up profilers ----------------------------------------------
    instr::Image image(*prog);
    instr::InstrumentManager manager(image);

    const core::InstProfilerConfig icfg = profilerConfig(opt);
    core::InstructionProfiler iprof(image, icfg);
    if (opt.target == "writes")
        iprof.profileAllWrites(manager);
    else if (opt.target == "loads")
        iprof.profileLoads(manager);
    else
        usage();

    core::MemProfilerConfig mcfg;
    core::MemoryProfiler mprof(mcfg);
    if (opt.mem)
        mprof.instrument(manager);
    core::ParameterProfiler pprof;
    if (opt.params)
        pprof.instrument(manager);
    core::RegisterProfiler rprof;
    if (opt.regs)
        rprof.instrument(manager);

    // --- run -------------------------------------------------------------
    vpsim::Cpu cpu(*prog,
                   {.memBytes = 16u << 20, .maxInsts = 500'000'000});
    std::optional<adapt::AdaptiveEngine> engine;
    if (opt.adapt) {
        adapt::AdaptConfig acfg;
        acfg.invariance = opt.adaptThreshold;
        engine.emplace(own_program, manager, cpu, acfg);
        if (!opt.adaptFrom.empty()) {
            core::ProfileSnapshot seed;
            std::string err;
            if (!vp::serve::requestSnapshot(opt.adaptFrom, seed, err))
                vp_fatal("--adapt-from %s: %s", opt.adaptFrom.c_str(),
                         err.c_str());
            const std::size_t seeded = engine->preseedFrom(seed);
            std::cout << "pre-seeded " << seeded << " specialization"
                      << (seeded == 1 ? "" : "s") << " from "
                      << opt.adaptFrom << " (" << seed.size()
                      << " aggregate entities)\n";
        }
    }
    manager.attach(cpu);
    vpsim::RunResult result;
    {
        vp::trace::ScopedSpan span(
            workload ? workload->name() + ":" + opt.dataset
                     : opt.asmFile);
        if (workload) {
            result = workloads::runToCompletion(cpu, *workload,
                                                opt.dataset);
        } else {
            result = cpu.run();
            if (!result.exited())
                vp_fatal("program did not exit cleanly (reason %d)",
                         static_cast<int>(result.reason));
        }
    }

    std::cout << "executed " << result.dynamicInsts
              << " instructions (" << result.dynamicLoads << " loads, "
              << result.dynamicStores << " stores); profiled "
              << iprof.profiledExecutions() << " of "
              << iprof.totalExecutions() << " values ("
              << iprof.fractionProfiled() * 100 << "%)\n";
    if (!cpu.output().empty())
        std::cout << "program output: " << cpu.output() << "\n";
    std::cout << "\n";

    core::instructionReport(iprof, opt.top)
        .print(std::cout, "value profile (most-executed first)");
    std::cout << "\n";
    core::semiInvariantReport(iprof, opt.minInv, 100, opt.top)
        .print(std::cout, "semi-invariant instructions");

    if (opt.strides) {
        vp::TextTable stride_table({"pc", "instruction", "execs",
                                    "strideInv%", "top stride"});
        std::size_t rows = 0;
        for (const auto &rec : iprof.records()) {
            if (rows >= opt.top)
                break;
            if (rec.profile.strideInvTop() < opt.minInv ||
                rec.profile.topStride() == 0 ||
                rec.profile.invTop() >= opt.minInv ||
                rec.totalExecutions < 100)
                continue;
            stride_table.row()
                .cell(static_cast<std::uint64_t>(rec.pc))
                .cell(vpsim::disassemble(*prog, rec.pc))
                .cell(rec.totalExecutions)
                .percent(rec.profile.strideInvTop())
                .cell(static_cast<std::int64_t>(
                    rec.profile.topStride()));
            ++rows;
        }
        std::cout << "\n";
        stride_table.print(std::cout,
                           "stride-predictable (not value-invariant)");
    }

    if (opt.mem) {
        std::cout << "\n";
        core::memoryReport(mprof, opt.top)
            .print(std::cout, "top written memory locations");
    }
    if (opt.params) {
        std::cout << "\n";
        core::parameterReport(pprof, opt.top)
            .print(std::cout, "procedures and parameters");
    }
    if (opt.regs) {
        vp::TextTable reg_table({"register", "writes", "LVP%",
                                 "InvTop%", "InvAll%", "Diff"});
        for (unsigned r = 0; r < vpsim::numRegs; ++r) {
            const auto &p = rprof.profileFor(r);
            if (p.executions() == 0)
                continue;
            reg_table.row()
                .cell(vpsim::regName(r))
                .cell(p.executions())
                .percent(p.lvp())
                .percent(p.invTop())
                .percent(p.invAll())
                .cell(p.distinct());
        }
        std::cout << "\n";
        reg_table.print(std::cout, "architectural registers");
    }

    if (engine) {
        std::cout << "\nadaptive specialization: "
                  << engine->installs() << " install(s), "
                  << engine->respecializations()
                  << " respecialization(s), " << engine->deopts()
                  << " deopt(s), " << engine->blacklists()
                  << " blacklist(s), guard " << engine->guardHits()
                  << "/"
                  << (engine->guardHits() + engine->guardMisses())
                  << " hit(s)\n";
        const std::string report = engine->report();
        if (!report.empty())
            std::cout << report;
    }

    // Adaptive parameter profiles ride along under tagged entity keys
    // (bit 63 set), disjoint from the per-pc instruction keys, so one
    // replica's convergence can pre-seed another via --adapt-from.
    auto snapshotWithAdapt = [&] {
        auto snap = core::ProfileSnapshot::fromInstructionProfiler(iprof);
        if (engine)
            engine->exportProfiles(snap);
        return snap;
    };
    if (!opt.saveFile.empty()) {
        std::ofstream out(opt.saveFile);
        if (!out)
            vp_fatal("cannot write '%s'", opt.saveFile.c_str());
        snapshotWithAdapt().save(out);
        std::cout << "\nsnapshot written to " << opt.saveFile << "\n";
    }
    if (!opt.emitAddr.empty()) {
        std::vector<core::ProfileSnapshot> deltas;
        deltas.push_back(snapshotWithAdapt());
        emitSnapshots(opt, std::move(deltas));
    }
    emitObservability(opt);
    return 0;
}
