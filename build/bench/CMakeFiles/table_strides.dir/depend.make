# Empty dependencies file for table_strides.
# This may be replaced when dependencies are built.
