file(REMOVE_RECURSE
  "CMakeFiles/table_strides.dir/table_strides.cpp.o"
  "CMakeFiles/table_strides.dir/table_strides.cpp.o.d"
  "table_strides"
  "table_strides.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_strides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
