# Empty compiler generated dependencies file for table_convergence.
# This may be replaced when dependencies are built.
