file(REMOVE_RECURSE
  "CMakeFiles/table_convergence.dir/table_convergence.cpp.o"
  "CMakeFiles/table_convergence.dir/table_convergence.cpp.o.d"
  "table_convergence"
  "table_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
