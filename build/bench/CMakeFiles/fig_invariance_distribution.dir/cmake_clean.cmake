file(REMOVE_RECURSE
  "CMakeFiles/fig_invariance_distribution.dir/fig_invariance_distribution.cpp.o"
  "CMakeFiles/fig_invariance_distribution.dir/fig_invariance_distribution.cpp.o.d"
  "fig_invariance_distribution"
  "fig_invariance_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_invariance_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
