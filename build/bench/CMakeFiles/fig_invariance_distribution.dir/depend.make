# Empty dependencies file for fig_invariance_distribution.
# This may be replaced when dependencies are built.
