file(REMOVE_RECURSE
  "CMakeFiles/table_train_test.dir/table_train_test.cpp.o"
  "CMakeFiles/table_train_test.dir/table_train_test.cpp.o.d"
  "table_train_test"
  "table_train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
