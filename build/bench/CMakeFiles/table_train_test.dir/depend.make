# Empty dependencies file for table_train_test.
# This may be replaced when dependencies are built.
