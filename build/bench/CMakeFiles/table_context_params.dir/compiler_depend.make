# Empty compiler generated dependencies file for table_context_params.
# This may be replaced when dependencies are built.
