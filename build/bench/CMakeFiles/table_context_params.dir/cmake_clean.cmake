file(REMOVE_RECURSE
  "CMakeFiles/table_context_params.dir/table_context_params.cpp.o"
  "CMakeFiles/table_context_params.dir/table_context_params.cpp.o.d"
  "table_context_params"
  "table_context_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_context_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
