# Empty compiler generated dependencies file for table_by_class.
# This may be replaced when dependencies are built.
