file(REMOVE_RECURSE
  "CMakeFiles/table_by_class.dir/table_by_class.cpp.o"
  "CMakeFiles/table_by_class.dir/table_by_class.cpp.o.d"
  "table_by_class"
  "table_by_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_by_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
