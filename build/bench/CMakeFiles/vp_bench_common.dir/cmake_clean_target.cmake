file(REMOVE_RECURSE
  "libvp_bench_common.a"
)
