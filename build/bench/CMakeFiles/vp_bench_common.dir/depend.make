# Empty dependencies file for vp_bench_common.
# This may be replaced when dependencies are built.
