file(REMOVE_RECURSE
  "CMakeFiles/vp_bench_common.dir/common.cpp.o"
  "CMakeFiles/vp_bench_common.dir/common.cpp.o.d"
  "libvp_bench_common.a"
  "libvp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
