file(REMOVE_RECURSE
  "CMakeFiles/table_specialization.dir/table_specialization.cpp.o"
  "CMakeFiles/table_specialization.dir/table_specialization.cpp.o.d"
  "table_specialization"
  "table_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
