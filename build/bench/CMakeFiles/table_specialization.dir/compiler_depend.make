# Empty compiler generated dependencies file for table_specialization.
# This may be replaced when dependencies are built.
