# Empty compiler generated dependencies file for table_predictors.
# This may be replaced when dependencies are built.
