file(REMOVE_RECURSE
  "CMakeFiles/table_predictors.dir/table_predictors.cpp.o"
  "CMakeFiles/table_predictors.dir/table_predictors.cpp.o.d"
  "table_predictors"
  "table_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
