
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table_load_invariance.cpp" "bench/CMakeFiles/table_load_invariance.dir/table_load_invariance.cpp.o" "gcc" "bench/CMakeFiles/table_load_invariance.dir/table_load_invariance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/vp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/specialize/CMakeFiles/vp_specialize.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/vp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/vp_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/vpsim/CMakeFiles/vp_vpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
