# Empty dependencies file for table_load_invariance.
# This may be replaced when dependencies are built.
