file(REMOVE_RECURSE
  "CMakeFiles/table_load_invariance.dir/table_load_invariance.cpp.o"
  "CMakeFiles/table_load_invariance.dir/table_load_invariance.cpp.o.d"
  "table_load_invariance"
  "table_load_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_load_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
