file(REMOVE_RECURSE
  "CMakeFiles/table_memory_locations.dir/table_memory_locations.cpp.o"
  "CMakeFiles/table_memory_locations.dir/table_memory_locations.cpp.o.d"
  "table_memory_locations"
  "table_memory_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_memory_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
