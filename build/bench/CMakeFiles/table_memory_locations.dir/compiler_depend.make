# Empty compiler generated dependencies file for table_memory_locations.
# This may be replaced when dependencies are built.
