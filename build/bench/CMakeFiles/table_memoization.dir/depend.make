# Empty dependencies file for table_memoization.
# This may be replaced when dependencies are built.
