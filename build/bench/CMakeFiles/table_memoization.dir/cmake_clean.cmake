file(REMOVE_RECURSE
  "CMakeFiles/table_memoization.dir/table_memoization.cpp.o"
  "CMakeFiles/table_memoization.dir/table_memoization.cpp.o.d"
  "table_memoization"
  "table_memoization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_memoization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
