# Empty compiler generated dependencies file for table_benchmarks.
# This may be replaced when dependencies are built.
