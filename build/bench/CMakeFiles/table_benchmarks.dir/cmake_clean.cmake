file(REMOVE_RECURSE
  "CMakeFiles/table_benchmarks.dir/table_benchmarks.cpp.o"
  "CMakeFiles/table_benchmarks.dir/table_benchmarks.cpp.o.d"
  "table_benchmarks"
  "table_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
