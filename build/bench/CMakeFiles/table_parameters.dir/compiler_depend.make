# Empty compiler generated dependencies file for table_parameters.
# This may be replaced when dependencies are built.
