file(REMOVE_RECURSE
  "CMakeFiles/table_parameters.dir/table_parameters.cpp.o"
  "CMakeFiles/table_parameters.dir/table_parameters.cpp.o.d"
  "table_parameters"
  "table_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
