file(REMOVE_RECURSE
  "CMakeFiles/table_tnv_ablation.dir/table_tnv_ablation.cpp.o"
  "CMakeFiles/table_tnv_ablation.dir/table_tnv_ablation.cpp.o.d"
  "table_tnv_ablation"
  "table_tnv_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_tnv_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
