# Empty dependencies file for table_tnv_ablation.
# This may be replaced when dependencies are built.
