# Empty dependencies file for table_all_instructions.
# This may be replaced when dependencies are built.
