file(REMOVE_RECURSE
  "CMakeFiles/table_all_instructions.dir/table_all_instructions.cpp.o"
  "CMakeFiles/table_all_instructions.dir/table_all_instructions.cpp.o.d"
  "table_all_instructions"
  "table_all_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_all_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
