file(REMOVE_RECURSE
  "CMakeFiles/table_registers.dir/table_registers.cpp.o"
  "CMakeFiles/table_registers.dir/table_registers.cpp.o.d"
  "table_registers"
  "table_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
