# Empty dependencies file for table_registers.
# This may be replaced when dependencies are built.
