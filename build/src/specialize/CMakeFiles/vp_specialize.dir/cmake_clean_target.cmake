file(REMOVE_RECURSE
  "libvp_specialize.a"
)
