file(REMOVE_RECURSE
  "CMakeFiles/vp_specialize.dir/passes.cpp.o"
  "CMakeFiles/vp_specialize.dir/passes.cpp.o.d"
  "CMakeFiles/vp_specialize.dir/purity.cpp.o"
  "CMakeFiles/vp_specialize.dir/purity.cpp.o.d"
  "CMakeFiles/vp_specialize.dir/specializer.cpp.o"
  "CMakeFiles/vp_specialize.dir/specializer.cpp.o.d"
  "libvp_specialize.a"
  "libvp_specialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_specialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
