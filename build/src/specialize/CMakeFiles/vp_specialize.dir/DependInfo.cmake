
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specialize/passes.cpp" "src/specialize/CMakeFiles/vp_specialize.dir/passes.cpp.o" "gcc" "src/specialize/CMakeFiles/vp_specialize.dir/passes.cpp.o.d"
  "/root/repo/src/specialize/purity.cpp" "src/specialize/CMakeFiles/vp_specialize.dir/purity.cpp.o" "gcc" "src/specialize/CMakeFiles/vp_specialize.dir/purity.cpp.o.d"
  "/root/repo/src/specialize/specializer.cpp" "src/specialize/CMakeFiles/vp_specialize.dir/specializer.cpp.o" "gcc" "src/specialize/CMakeFiles/vp_specialize.dir/specializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vpsim/CMakeFiles/vp_vpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
