# Empty dependencies file for vp_specialize.
# This may be replaced when dependencies are built.
