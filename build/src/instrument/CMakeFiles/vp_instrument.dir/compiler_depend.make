# Empty compiler generated dependencies file for vp_instrument.
# This may be replaced when dependencies are built.
