file(REMOVE_RECURSE
  "libvp_instrument.a"
)
