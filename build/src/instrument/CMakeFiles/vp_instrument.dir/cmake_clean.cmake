file(REMOVE_RECURSE
  "CMakeFiles/vp_instrument.dir/image.cpp.o"
  "CMakeFiles/vp_instrument.dir/image.cpp.o.d"
  "CMakeFiles/vp_instrument.dir/manager.cpp.o"
  "CMakeFiles/vp_instrument.dir/manager.cpp.o.d"
  "libvp_instrument.a"
  "libvp_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
