# Empty compiler generated dependencies file for vp_support.
# This may be replaced when dependencies are built.
