file(REMOVE_RECURSE
  "libvp_support.a"
)
