file(REMOVE_RECURSE
  "CMakeFiles/vp_support.dir/logging.cpp.o"
  "CMakeFiles/vp_support.dir/logging.cpp.o.d"
  "CMakeFiles/vp_support.dir/stats.cpp.o"
  "CMakeFiles/vp_support.dir/stats.cpp.o.d"
  "CMakeFiles/vp_support.dir/strings.cpp.o"
  "CMakeFiles/vp_support.dir/strings.cpp.o.d"
  "CMakeFiles/vp_support.dir/table.cpp.o"
  "CMakeFiles/vp_support.dir/table.cpp.o.d"
  "libvp_support.a"
  "libvp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
