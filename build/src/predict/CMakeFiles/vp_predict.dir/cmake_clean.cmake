file(REMOVE_RECURSE
  "CMakeFiles/vp_predict.dir/harness.cpp.o"
  "CMakeFiles/vp_predict.dir/harness.cpp.o.d"
  "CMakeFiles/vp_predict.dir/predictor.cpp.o"
  "CMakeFiles/vp_predict.dir/predictor.cpp.o.d"
  "libvp_predict.a"
  "libvp_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
