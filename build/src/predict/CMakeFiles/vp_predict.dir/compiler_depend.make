# Empty compiler generated dependencies file for vp_predict.
# This may be replaced when dependencies are built.
