file(REMOVE_RECURSE
  "libvp_predict.a"
)
