
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vpsim/assembler.cpp" "src/vpsim/CMakeFiles/vp_vpsim.dir/assembler.cpp.o" "gcc" "src/vpsim/CMakeFiles/vp_vpsim.dir/assembler.cpp.o.d"
  "/root/repo/src/vpsim/cfg.cpp" "src/vpsim/CMakeFiles/vp_vpsim.dir/cfg.cpp.o" "gcc" "src/vpsim/CMakeFiles/vp_vpsim.dir/cfg.cpp.o.d"
  "/root/repo/src/vpsim/cpu.cpp" "src/vpsim/CMakeFiles/vp_vpsim.dir/cpu.cpp.o" "gcc" "src/vpsim/CMakeFiles/vp_vpsim.dir/cpu.cpp.o.d"
  "/root/repo/src/vpsim/disasm.cpp" "src/vpsim/CMakeFiles/vp_vpsim.dir/disasm.cpp.o" "gcc" "src/vpsim/CMakeFiles/vp_vpsim.dir/disasm.cpp.o.d"
  "/root/repo/src/vpsim/eval.cpp" "src/vpsim/CMakeFiles/vp_vpsim.dir/eval.cpp.o" "gcc" "src/vpsim/CMakeFiles/vp_vpsim.dir/eval.cpp.o.d"
  "/root/repo/src/vpsim/isa.cpp" "src/vpsim/CMakeFiles/vp_vpsim.dir/isa.cpp.o" "gcc" "src/vpsim/CMakeFiles/vp_vpsim.dir/isa.cpp.o.d"
  "/root/repo/src/vpsim/memory.cpp" "src/vpsim/CMakeFiles/vp_vpsim.dir/memory.cpp.o" "gcc" "src/vpsim/CMakeFiles/vp_vpsim.dir/memory.cpp.o.d"
  "/root/repo/src/vpsim/program.cpp" "src/vpsim/CMakeFiles/vp_vpsim.dir/program.cpp.o" "gcc" "src/vpsim/CMakeFiles/vp_vpsim.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
