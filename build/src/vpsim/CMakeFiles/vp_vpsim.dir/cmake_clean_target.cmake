file(REMOVE_RECURSE
  "libvp_vpsim.a"
)
