# Empty dependencies file for vp_vpsim.
# This may be replaced when dependencies are built.
