file(REMOVE_RECURSE
  "CMakeFiles/vp_vpsim.dir/assembler.cpp.o"
  "CMakeFiles/vp_vpsim.dir/assembler.cpp.o.d"
  "CMakeFiles/vp_vpsim.dir/cfg.cpp.o"
  "CMakeFiles/vp_vpsim.dir/cfg.cpp.o.d"
  "CMakeFiles/vp_vpsim.dir/cpu.cpp.o"
  "CMakeFiles/vp_vpsim.dir/cpu.cpp.o.d"
  "CMakeFiles/vp_vpsim.dir/disasm.cpp.o"
  "CMakeFiles/vp_vpsim.dir/disasm.cpp.o.d"
  "CMakeFiles/vp_vpsim.dir/eval.cpp.o"
  "CMakeFiles/vp_vpsim.dir/eval.cpp.o.d"
  "CMakeFiles/vp_vpsim.dir/isa.cpp.o"
  "CMakeFiles/vp_vpsim.dir/isa.cpp.o.d"
  "CMakeFiles/vp_vpsim.dir/memory.cpp.o"
  "CMakeFiles/vp_vpsim.dir/memory.cpp.o.d"
  "CMakeFiles/vp_vpsim.dir/program.cpp.o"
  "CMakeFiles/vp_vpsim.dir/program.cpp.o.d"
  "libvp_vpsim.a"
  "libvp_vpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_vpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
