file(REMOVE_RECURSE
  "CMakeFiles/vp_workloads.dir/anagram.cpp.o"
  "CMakeFiles/vp_workloads.dir/anagram.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/compress.cpp.o"
  "CMakeFiles/vp_workloads.dir/compress.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/crc.cpp.o"
  "CMakeFiles/vp_workloads.dir/crc.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/dijkstra.cpp.o"
  "CMakeFiles/vp_workloads.dir/dijkstra.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/huffman.cpp.o"
  "CMakeFiles/vp_workloads.dir/huffman.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/inject.cpp.o"
  "CMakeFiles/vp_workloads.dir/inject.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/life.cpp.o"
  "CMakeFiles/vp_workloads.dir/life.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/lisp.cpp.o"
  "CMakeFiles/vp_workloads.dir/lisp.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/matmul.cpp.o"
  "CMakeFiles/vp_workloads.dir/matmul.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/nqueens.cpp.o"
  "CMakeFiles/vp_workloads.dir/nqueens.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/qsort.cpp.o"
  "CMakeFiles/vp_workloads.dir/qsort.cpp.o.d"
  "CMakeFiles/vp_workloads.dir/workload.cpp.o"
  "CMakeFiles/vp_workloads.dir/workload.cpp.o.d"
  "libvp_workloads.a"
  "libvp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
