# Empty compiler generated dependencies file for vp_workloads.
# This may be replaced when dependencies are built.
