
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/anagram.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/anagram.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/anagram.cpp.o.d"
  "/root/repo/src/workloads/compress.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/compress.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/compress.cpp.o.d"
  "/root/repo/src/workloads/crc.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/crc.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/crc.cpp.o.d"
  "/root/repo/src/workloads/dijkstra.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/dijkstra.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/dijkstra.cpp.o.d"
  "/root/repo/src/workloads/huffman.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/huffman.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/huffman.cpp.o.d"
  "/root/repo/src/workloads/inject.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/inject.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/inject.cpp.o.d"
  "/root/repo/src/workloads/life.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/life.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/life.cpp.o.d"
  "/root/repo/src/workloads/lisp.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/lisp.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/lisp.cpp.o.d"
  "/root/repo/src/workloads/matmul.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/matmul.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/matmul.cpp.o.d"
  "/root/repo/src/workloads/nqueens.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/nqueens.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/nqueens.cpp.o.d"
  "/root/repo/src/workloads/qsort.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/qsort.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/qsort.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/vp_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/vp_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vpsim/CMakeFiles/vp_vpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
