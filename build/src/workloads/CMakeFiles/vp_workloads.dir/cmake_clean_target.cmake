file(REMOVE_RECURSE
  "libvp_workloads.a"
)
