file(REMOVE_RECURSE
  "CMakeFiles/vp_core.dir/instruction_profiler.cpp.o"
  "CMakeFiles/vp_core.dir/instruction_profiler.cpp.o.d"
  "CMakeFiles/vp_core.dir/memo_profiler.cpp.o"
  "CMakeFiles/vp_core.dir/memo_profiler.cpp.o.d"
  "CMakeFiles/vp_core.dir/memory_profiler.cpp.o"
  "CMakeFiles/vp_core.dir/memory_profiler.cpp.o.d"
  "CMakeFiles/vp_core.dir/parameter_profiler.cpp.o"
  "CMakeFiles/vp_core.dir/parameter_profiler.cpp.o.d"
  "CMakeFiles/vp_core.dir/register_profiler.cpp.o"
  "CMakeFiles/vp_core.dir/register_profiler.cpp.o.d"
  "CMakeFiles/vp_core.dir/report.cpp.o"
  "CMakeFiles/vp_core.dir/report.cpp.o.d"
  "CMakeFiles/vp_core.dir/sampler.cpp.o"
  "CMakeFiles/vp_core.dir/sampler.cpp.o.d"
  "CMakeFiles/vp_core.dir/snapshot.cpp.o"
  "CMakeFiles/vp_core.dir/snapshot.cpp.o.d"
  "CMakeFiles/vp_core.dir/tnv_table.cpp.o"
  "CMakeFiles/vp_core.dir/tnv_table.cpp.o.d"
  "CMakeFiles/vp_core.dir/value_profile.cpp.o"
  "CMakeFiles/vp_core.dir/value_profile.cpp.o.d"
  "libvp_core.a"
  "libvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
