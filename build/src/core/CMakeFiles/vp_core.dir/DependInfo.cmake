
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/instruction_profiler.cpp" "src/core/CMakeFiles/vp_core.dir/instruction_profiler.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/instruction_profiler.cpp.o.d"
  "/root/repo/src/core/memo_profiler.cpp" "src/core/CMakeFiles/vp_core.dir/memo_profiler.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/memo_profiler.cpp.o.d"
  "/root/repo/src/core/memory_profiler.cpp" "src/core/CMakeFiles/vp_core.dir/memory_profiler.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/memory_profiler.cpp.o.d"
  "/root/repo/src/core/parameter_profiler.cpp" "src/core/CMakeFiles/vp_core.dir/parameter_profiler.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/parameter_profiler.cpp.o.d"
  "/root/repo/src/core/register_profiler.cpp" "src/core/CMakeFiles/vp_core.dir/register_profiler.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/register_profiler.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/vp_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sampler.cpp" "src/core/CMakeFiles/vp_core.dir/sampler.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/sampler.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/vp_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/snapshot.cpp.o.d"
  "/root/repo/src/core/tnv_table.cpp" "src/core/CMakeFiles/vp_core.dir/tnv_table.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/tnv_table.cpp.o.d"
  "/root/repo/src/core/value_profile.cpp" "src/core/CMakeFiles/vp_core.dir/value_profile.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/value_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/vp_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/vpsim/CMakeFiles/vp_vpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
