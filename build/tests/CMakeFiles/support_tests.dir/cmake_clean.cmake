file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/logging_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/logging_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/rng_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/stats_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/stats_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/strings_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/strings_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/table_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/table_test.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
