# Empty compiler generated dependencies file for fuzz_tests.
# This may be replaced when dependencies are built.
