file(REMOVE_RECURSE
  "CMakeFiles/fuzz_tests.dir/fuzz/fuzz_test.cpp.o"
  "CMakeFiles/fuzz_tests.dir/fuzz/fuzz_test.cpp.o.d"
  "fuzz_tests"
  "fuzz_tests.pdb"
  "fuzz_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
