file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/instruction_profiler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/instruction_profiler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/memo_profiler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/memo_profiler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/memory_profiler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/memory_profiler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/parameter_profiler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/parameter_profiler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/register_profiler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/register_profiler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/sampler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/sampler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/snapshot_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/snapshot_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/tnv_table_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/tnv_table_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/value_profile_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/value_profile_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
