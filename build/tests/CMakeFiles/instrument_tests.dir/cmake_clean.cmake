file(REMOVE_RECURSE
  "CMakeFiles/instrument_tests.dir/instrument/image_test.cpp.o"
  "CMakeFiles/instrument_tests.dir/instrument/image_test.cpp.o.d"
  "CMakeFiles/instrument_tests.dir/instrument/manager_test.cpp.o"
  "CMakeFiles/instrument_tests.dir/instrument/manager_test.cpp.o.d"
  "instrument_tests"
  "instrument_tests.pdb"
  "instrument_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
