# Empty dependencies file for instrument_tests.
# This may be replaced when dependencies are built.
