file(REMOVE_RECURSE
  "CMakeFiles/specialize_tests.dir/specialize/passes_property_test.cpp.o"
  "CMakeFiles/specialize_tests.dir/specialize/passes_property_test.cpp.o.d"
  "CMakeFiles/specialize_tests.dir/specialize/purity_test.cpp.o"
  "CMakeFiles/specialize_tests.dir/specialize/purity_test.cpp.o.d"
  "CMakeFiles/specialize_tests.dir/specialize/specializer_test.cpp.o"
  "CMakeFiles/specialize_tests.dir/specialize/specializer_test.cpp.o.d"
  "specialize_tests"
  "specialize_tests.pdb"
  "specialize_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specialize_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
