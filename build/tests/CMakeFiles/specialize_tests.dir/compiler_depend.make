# Empty compiler generated dependencies file for specialize_tests.
# This may be replaced when dependencies are built.
