file(REMOVE_RECURSE
  "CMakeFiles/vpsim_tests.dir/vpsim/assembler_test.cpp.o"
  "CMakeFiles/vpsim_tests.dir/vpsim/assembler_test.cpp.o.d"
  "CMakeFiles/vpsim_tests.dir/vpsim/cfg_test.cpp.o"
  "CMakeFiles/vpsim_tests.dir/vpsim/cfg_test.cpp.o.d"
  "CMakeFiles/vpsim_tests.dir/vpsim/cpu_test.cpp.o"
  "CMakeFiles/vpsim_tests.dir/vpsim/cpu_test.cpp.o.d"
  "CMakeFiles/vpsim_tests.dir/vpsim/disasm_test.cpp.o"
  "CMakeFiles/vpsim_tests.dir/vpsim/disasm_test.cpp.o.d"
  "CMakeFiles/vpsim_tests.dir/vpsim/isa_test.cpp.o"
  "CMakeFiles/vpsim_tests.dir/vpsim/isa_test.cpp.o.d"
  "CMakeFiles/vpsim_tests.dir/vpsim/memory_test.cpp.o"
  "CMakeFiles/vpsim_tests.dir/vpsim/memory_test.cpp.o.d"
  "vpsim_tests"
  "vpsim_tests.pdb"
  "vpsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
