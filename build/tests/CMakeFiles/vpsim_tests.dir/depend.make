# Empty dependencies file for vpsim_tests.
# This may be replaced when dependencies are built.
