# Empty compiler generated dependencies file for predict_tests.
# This may be replaced when dependencies are built.
