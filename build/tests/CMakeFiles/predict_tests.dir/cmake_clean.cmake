file(REMOVE_RECURSE
  "CMakeFiles/predict_tests.dir/predict/predictor_test.cpp.o"
  "CMakeFiles/predict_tests.dir/predict/predictor_test.cpp.o.d"
  "predict_tests"
  "predict_tests.pdb"
  "predict_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
