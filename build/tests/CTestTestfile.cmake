# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/vpsim_tests[1]_include.cmake")
include("/root/repo/build/tests/instrument_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/predict_tests[1]_include.cmake")
include("/root/repo/build/tests/specialize_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/fuzz_tests[1]_include.cmake")
add_test(smoke_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_find_invariants "/root/repo/build/examples/find_invariants" "lisp" "test")
set_tests_properties(smoke_find_invariants PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_memory_profile "/root/repo/build/examples/memory_profile" "crc" "test")
set_tests_properties(smoke_memory_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;75;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_adaptive_specialize "/root/repo/build/examples/adaptive_specialize")
set_tests_properties(smoke_adaptive_specialize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;76;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_predictor_tour "/root/repo/build/examples/predictor_tour" "lisp")
set_tests_properties(smoke_predictor_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;77;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_vpprof_list "/root/repo/build/tools/vpprof" "--list")
set_tests_properties(smoke_vpprof_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;78;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_vpprof_workload "/root/repo/build/tools/vpprof" "--workload" "nqueens" "--mode" "sampled" "--params")
set_tests_properties(smoke_vpprof_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;79;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_vpprof_random "/root/repo/build/tools/vpprof" "--workload" "huffman" "--mode" "random" "--rate" "0.05" "--mem")
set_tests_properties(smoke_vpprof_random PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;81;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke_vpprof_asm "/root/repo/build/tools/vpprof" "--asm" "/root/repo/examples/programs/polyhash.vasm" "--strides" "--disasm")
set_tests_properties(smoke_vpprof_asm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")
