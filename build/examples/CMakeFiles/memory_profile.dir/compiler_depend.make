# Empty compiler generated dependencies file for memory_profile.
# This may be replaced when dependencies are built.
