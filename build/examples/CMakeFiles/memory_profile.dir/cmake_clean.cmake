file(REMOVE_RECURSE
  "CMakeFiles/memory_profile.dir/memory_profile.cpp.o"
  "CMakeFiles/memory_profile.dir/memory_profile.cpp.o.d"
  "memory_profile"
  "memory_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
