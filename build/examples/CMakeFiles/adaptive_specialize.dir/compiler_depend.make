# Empty compiler generated dependencies file for adaptive_specialize.
# This may be replaced when dependencies are built.
