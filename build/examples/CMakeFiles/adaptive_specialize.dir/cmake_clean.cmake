file(REMOVE_RECURSE
  "CMakeFiles/adaptive_specialize.dir/adaptive_specialize.cpp.o"
  "CMakeFiles/adaptive_specialize.dir/adaptive_specialize.cpp.o.d"
  "adaptive_specialize"
  "adaptive_specialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_specialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
