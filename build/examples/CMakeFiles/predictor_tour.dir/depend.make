# Empty dependencies file for predictor_tour.
# This may be replaced when dependencies are built.
