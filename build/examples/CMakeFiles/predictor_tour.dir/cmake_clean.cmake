file(REMOVE_RECURSE
  "CMakeFiles/predictor_tour.dir/predictor_tour.cpp.o"
  "CMakeFiles/predictor_tour.dir/predictor_tour.cpp.o.d"
  "predictor_tour"
  "predictor_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
