# Empty dependencies file for find_invariants.
# This may be replaced when dependencies are built.
