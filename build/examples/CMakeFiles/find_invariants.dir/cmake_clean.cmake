file(REMOVE_RECURSE
  "CMakeFiles/find_invariants.dir/find_invariants.cpp.o"
  "CMakeFiles/find_invariants.dir/find_invariants.cpp.o.d"
  "find_invariants"
  "find_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
