file(REMOVE_RECURSE
  "CMakeFiles/vpprof.dir/vpprof.cpp.o"
  "CMakeFiles/vpprof.dir/vpprof.cpp.o.d"
  "vpprof"
  "vpprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
