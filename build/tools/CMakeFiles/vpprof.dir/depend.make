# Empty dependencies file for vpprof.
# This may be replaced when dependencies are built.
